// Go runtime stats in the registry: goroutine count, heap in use, GC cycle
// count and a GC pause histogram, plus process uptime. The registry is a
// passive store, so the stats refresh on demand — the debug mux collects
// before rendering /metrics, and a status page collects before rendering
// itself — rather than from a background goroutine nobody may ever scrape.
package obs

import (
	"runtime"
	"sync"
	"time"
)

// processStart anchors process_uptime_seconds for every collector in the
// process (a daemon creates one per debug surface; they must agree).
var processStart = time.Now()

// RuntimeCollector refreshes Go runtime metrics into a registry:
//
//	go_goroutines              current goroutine count (gauge, with HWM)
//	go_heap_inuse_bytes        bytes in in-use heap spans (gauge)
//	go_heap_alloc_bytes        bytes of live heap objects (gauge)
//	go_gc_runs_total           completed GC cycles (counter)
//	go_gc_pause_ns             stop-the-world pause histogram
//	process_uptime_seconds     seconds since process start (gauge)
//
// A nil collector (from a nil registry) is a no-op.
type RuntimeCollector struct {
	mu        sync.Mutex
	lastNumGC uint32

	gGoroutines *Gauge
	gHeapInuse  *Gauge
	gHeapAlloc  *Gauge
	gUptime     *Gauge
	cGCRuns     *Counter
	hPause      *Histogram
}

// NewRuntimeCollector returns a collector bound to reg (nil reg → nil
// collector, whose Collect is a no-op).
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	if reg == nil {
		return nil
	}
	return &RuntimeCollector{
		gGoroutines: reg.Gauge("go_goroutines"),
		gHeapInuse:  reg.Gauge("go_heap_inuse_bytes"),
		gHeapAlloc:  reg.Gauge("go_heap_alloc_bytes"),
		gUptime:     reg.Gauge("process_uptime_seconds"),
		cGCRuns:     reg.Counter("go_gc_runs_total"),
		hPause:      reg.Histogram("go_gc_pause_ns", DurationBucketsNS),
	}
}

// Collect refreshes every runtime metric. GC pauses observed since the last
// Collect are fed into the pause histogram (runtime.MemStats keeps the last
// 256, which bounds what an infrequent scraper can recover). Safe for
// concurrent use; no-op on a nil receiver.
func (c *RuntimeCollector) Collect() {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.gGoroutines.Set(int64(runtime.NumGoroutine()))
	c.gHeapInuse.Set(int64(ms.HeapInuse))
	c.gHeapAlloc.Set(int64(ms.HeapAlloc))
	c.gUptime.Set(int64(time.Since(processStart).Seconds()))

	c.mu.Lock()
	defer c.mu.Unlock()
	if ms.NumGC > c.lastNumGC {
		newRuns := ms.NumGC - c.lastNumGC
		c.cGCRuns.Add(int64(newRuns))
		if newRuns > uint32(len(ms.PauseNs)) {
			newRuns = uint32(len(ms.PauseNs)) // older pauses were overwritten
		}
		for i := ms.NumGC - newRuns + 1; i <= ms.NumGC; i++ {
			c.hPause.Observe(int64(ms.PauseNs[(i+255)%256]))
		}
		c.lastNumGC = ms.NumGC
	}
}

// Runtime returns the registry's shared runtime collector, creating it on
// first use. Every scrape surface of one registry (the /metrics handler, a
// status page) must use this shared instance: independent collectors each
// count GC deltas from their own baseline, double-counting every cycle.
// Nil-safe: a nil registry yields a nil (no-op) collector.
func (r *Registry) Runtime() *RuntimeCollector {
	if r == nil {
		return nil
	}
	r.rcOnce.Do(func() { r.rc = NewRuntimeCollector(r) })
	return r.rc
}

// Uptime returns the time since process start.
func Uptime() time.Duration { return time.Since(processStart) }
