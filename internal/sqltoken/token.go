// Package sqltoken implements a lexer for the T-SQL-ish dialect used by
// SkyServer-style query logs. It turns raw statement text into a stream of
// tokens consumed by package sqlparser.
package sqltoken

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds. Keywords are folded into Keyword with the upper-cased text in
// Token.Val; this keeps the parser's keyword matching case-insensitive
// without a large enum.
const (
	EOF Kind = iota
	Ident
	QuotedIdent // [bracketed] or "double quoted" identifier
	Keyword
	Number
	String   // 'single quoted'
	Variable // @name
	Op       // operator or punctuation: = <> <= >= < > + - * / % . , ( ) ;
	Comment  // -- line or /* block */ (usually skipped)
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "Ident"
	case QuotedIdent:
		return "QuotedIdent"
	case Keyword:
		return "Keyword"
	case Number:
		return "Number"
	case String:
		return "String"
	case Variable:
		return "Variable"
	case Op:
		return "Op"
	case Comment:
		return "Comment"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is one lexical unit of a SQL statement.
type Token struct {
	Kind Kind
	// Val is the token text. Keywords are upper-cased; identifiers keep
	// their original case (SQL identifiers compare case-insensitively, which
	// callers handle via Canon). Quoted identifiers and strings hold the
	// unquoted content.
	Val string
	// Pos is the byte offset of the token start in the input.
	Pos int
}

func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%d", t.Kind, t.Val, t.Pos)
}

// keywords are the reserved words recognized by the lexer. Anything else is
// an Ident. The set covers the SELECT dialect plus enough DML/DDL to classify
// non-SELECT statements.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "TOP": true,
	"DISTINCT": true, "ALL": true, "AS": true, "JOIN": true, "INNER": true,
	"LEFT": true, "RIGHT": true, "FULL": true, "OUTER": true, "CROSS": true,
	"ON": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"BETWEEN": true, "LIKE": true, "IS": true, "NULL": true, "EXISTS": true,
	"UNION": true, "EXCEPT": true, "INTERSECT": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "APPLY": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "DROP": true, "ALTER": true, "TABLE": true,
	"VIEW": true, "INDEX": true, "EXEC": true, "EXECUTE": true,
	"DECLARE": true, "TRUNCATE": true, "GRANT": true, "REVOKE": true,
	"PROCEDURE": true, "FUNCTION": true, "RETURNS": true, "BEGIN": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"CAST": true, "CONVERT": true,
}

// IsKeyword reports whether the upper-cased word is reserved.
func IsKeyword(upper string) bool { return keywords[upper] }

// maxKeywordLen is the longest keyword's length; longer words can never be
// keywords, so KeywordCanon rejects them without touching the map.
const maxKeywordLen = 9

// keywordCanon maps every keyword to its interned canonical spelling, so
// the lexer can hand out keyword token values without allocating.
var keywordCanon = func() map[string]string {
	m := make(map[string]string, len(keywords))
	for k := range keywords {
		m[k] = k
	}
	return m
}()

// KeywordCanon reports whether word is a keyword regardless of case and, if
// so, returns its canonical upper-case spelling. The returned string is
// interned — the call never allocates, unlike strings.ToUpper(word).
func KeywordCanon(word string) (string, bool) {
	if len(word) > maxKeywordLen {
		return "", false
	}
	var buf [maxKeywordLen]byte
	for i := 0; i < len(word); i++ {
		c := word[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		buf[i] = c
	}
	kw, ok := keywordCanon[string(buf[:len(word)])]
	return kw, ok
}
