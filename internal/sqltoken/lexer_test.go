package sqltoken

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func vals(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Val
	}
	return out
}

func TestTokenizeBasicSelect(t *testing.T) {
	toks, err := Tokenize("SELECT a, b FROM t WHERE a = 10")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []Kind{Keyword, Ident, Op, Ident, Keyword, Ident, Keyword, Ident, Op, Number}
	got := kinds(toks)
	if len(got) != len(wantKinds) {
		t.Fatalf("got %d tokens %v, want %d", len(got), toks, len(wantKinds))
	}
	for i := range wantKinds {
		if got[i] != wantKinds[i] {
			t.Errorf("token %d: got %v, want %v (%v)", i, got[i], wantKinds[i], toks[i])
		}
	}
}

func TestKeywordsAreUppercasedAndIdentsKeepCase(t *testing.T) {
	toks, err := Tokenize("select MyCol from MyTable")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SELECT", "MyCol", "FROM", "MyTable"}
	got := vals(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %q, want %q", i, got[i], want[i])
		}
	}
	if toks[0].Kind != Keyword || toks[1].Kind != Ident {
		t.Errorf("kind mismatch: %v", toks)
	}
}

func TestStringLiteralWithEscapedQuote(t *testing.T) {
	toks, err := Tokenize("SELECT 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[1].Kind != String || toks[1].Val != "it's" {
		t.Fatalf("got %v", toks)
	}
}

func TestUnterminatedString(t *testing.T) {
	_, err := Tokenize("SELECT 'oops")
	if err == nil || !strings.Contains(err.Error(), "unterminated string") {
		t.Fatalf("want unterminated string error, got %v", err)
	}
}

func TestBracketedIdentifier(t *testing.T) {
	toks, err := Tokenize("SELECT [my col] FROM [my table]")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != QuotedIdent || toks[1].Val != "my col" {
		t.Fatalf("got %v", toks[1])
	}
	if toks[3].Kind != QuotedIdent || toks[3].Val != "my table" {
		t.Fatalf("got %v", toks[3])
	}
}

func TestUnterminatedBracket(t *testing.T) {
	_, err := Tokenize("SELECT [oops FROM t")
	if err == nil {
		t.Fatal("want error for unterminated bracket")
	}
}

func TestDoubleQuotedIdentifier(t *testing.T) {
	toks, err := Tokenize(`SELECT "quoted name"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != QuotedIdent || toks[1].Val != "quoted name" {
		t.Fatalf("got %v", toks[1])
	}
}

func TestVariables(t *testing.T) {
	toks, err := Tokenize("SELECT @ra, @@rowcount")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != Variable || toks[1].Val != "@ra" {
		t.Fatalf("got %v", toks[1])
	}
	if toks[3].Kind != Variable || toks[3].Val != "@@rowcount" {
		t.Fatalf("got %v", toks[3])
	}
}

func TestBareAtSignIsError(t *testing.T) {
	if _, err := Tokenize("SELECT @ FROM t"); err == nil {
		t.Fatal("want error for bare @")
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]string{
		"42":       "42",
		"3.14":     "3.14",
		".5":       ".5",
		"1e10":     "1e10",
		"2.5E-3":   "2.5E-3",
		"0x1Fab":   "0x1Fab",
		"6.7e+2":   "6.7e+2",
		"75094094": "75094094",
	}
	for in, want := range cases {
		toks, err := Tokenize(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if len(toks) != 1 || toks[0].Kind != Number || toks[0].Val != want {
			t.Errorf("%q: got %v", in, toks)
		}
	}
}

func TestNumberFollowedByIdentifierLetterE(t *testing.T) {
	// "12e" is not a valid exponent; the e belongs to the next token stream.
	toks, err := Tokenize("12easter")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].Val != "12" || toks[1].Val != "easter" {
		t.Fatalf("got %v", toks)
	}
}

func TestLineComment(t *testing.T) {
	toks, err := Tokenize("SELECT a -- trailing comment\nFROM t")
	if err != nil {
		t.Fatal(err)
	}
	got := vals(toks)
	want := []string{"SELECT", "a", "FROM", "t"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestNestedBlockComment(t *testing.T) {
	toks, err := Tokenize("SELECT /* outer /* inner */ still outer */ a")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[1].Val != "a" {
		t.Fatalf("got %v", toks)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	if _, err := Tokenize("SELECT /* oops"); err == nil {
		t.Fatal("want error for unterminated block comment")
	}
}

func TestKeepComments(t *testing.T) {
	l := NewLexer("-- note\nSELECT 1")
	l.KeepComments = true
	first := l.Next()
	if first.Kind != Comment || first.Val != "-- note" {
		t.Fatalf("got %v", first)
	}
}

func TestTwoByteOperators(t *testing.T) {
	toks, err := Tokenize("a <> b <= c >= d != e")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.Kind == Op {
			ops = append(ops, tok.Val)
		}
	}
	want := []string{"<>", "<=", ">=", "!="}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d: got %q want %q", i, ops[i], want[i])
		}
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	if _, err := Tokenize("SELECT a ? b"); err == nil {
		t.Fatal("want error for '?'")
	}
}

func TestPositionsAreMonotonic(t *testing.T) {
	toks, err := Tokenize("SELECT a, b FROM t WHERE a = 'x' AND b >= 3.5 -- c")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(toks); i++ {
		if toks[i].Pos <= toks[i-1].Pos {
			t.Fatalf("positions not monotonic: %v", toks)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	if !IsKeyword("SELECT") || !IsKeyword("BETWEEN") {
		t.Error("expected keywords")
	}
	if IsKeyword("select") {
		t.Error("IsKeyword takes upper-case input only")
	}
	if IsKeyword("OBJID") {
		t.Error("objid is not a keyword")
	}
}

func TestCanon(t *testing.T) {
	if Canon("MyTable") != "MYTABLE" {
		t.Errorf("got %q", Canon("MyTable"))
	}
}

// TestLexerNeverPanics feeds arbitrary strings; the lexer must terminate
// with tokens or an error, never panic or loop.
func TestLexerNeverPanics(t *testing.T) {
	f := func(s string) bool {
		l := NewLexer(s)
		for i := 0; i < len(s)+10; i++ {
			tok := l.Next()
			if tok.Kind == EOF {
				return true
			}
		}
		// Every Next call consumes at least one byte, so len(s)+10
		// iterations must reach EOF.
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestTokenValuesCoverInput checks that for well-formed SQL-ish inputs the
// concatenated token extents never overlap and stay in bounds.
func TestTokenExtentsInBounds(t *testing.T) {
	inputs := []string{
		"SELECT a FROM b WHERE c = 'd' AND e >= 1.5",
		"select [x y], \"z\" from t1, t2",
		"SELECT @v, count(*) FROM t GROUP BY a",
	}
	for _, in := range inputs {
		toks, err := Tokenize(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		for _, tok := range toks {
			if tok.Pos < 0 || tok.Pos >= len(in) {
				t.Errorf("%q: token %v out of bounds", in, tok)
			}
		}
	}
}
