package sqltoken

import (
	"fmt"
	"strings"
)

// Lexer scans a SQL statement into tokens. Comments are skipped unless
// KeepComments is set before the first Next call.
type Lexer struct {
	src          string
	pos          int
	KeepComments bool
	err          error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Err returns the first lexical error encountered, if any.
func (l *Lexer) Err() error { return l.err }

// Tokenize scans the whole input and returns all tokens (excluding EOF and,
// by default, comments). It returns an error for unterminated strings,
// comments, or bracketed identifiers.
func Tokenize(src string) ([]Token, error) {
	// SQL averages well under 8 bytes of source per token; pre-sizing saves
	// the growslice ladder on the hot parse path.
	return TokenizeAppend(make([]Token, 0, 8+len(src)/8), src)
}

// TokenizeAppend is Tokenize appending into dst (sliced to length 0 by the
// caller to recycle its capacity). Token values alias src or interned keyword
// strings, never dst, so the buffer may be reused once the tokens themselves
// are no longer referenced.
func TokenizeAppend(dst []Token, src string) ([]Token, error) {
	l := NewLexer(src)
	out := dst
	for {
		t := l.Next()
		if l.err != nil {
			return out, l.err
		}
		if t.Kind == EOF {
			return out, nil
		}
		out = append(out, t)
	}
}

func (l *Lexer) setErr(pos int, format string, args ...any) {
	if l.err == nil {
		l.err = fmt.Errorf("sql lex error at byte %d: %s", pos, fmt.Sprintf(format, args...))
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || c == '#' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || isDigit(c) || c == '$'
}

// Next returns the next token, or a token with Kind EOF at end of input.
func (l *Lexer) Next() Token {
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			return Token{Kind: EOF, Pos: l.pos}
		}
		start := l.pos
		c := l.src[l.pos]

		switch {
		case c == '-' && l.peekAt(1) == '-':
			text := l.scanLineComment()
			if l.KeepComments {
				return Token{Kind: Comment, Val: text, Pos: start}
			}
			continue
		case c == '/' && l.peekAt(1) == '*':
			text := l.scanBlockComment()
			if l.err != nil {
				return Token{Kind: EOF, Pos: l.pos}
			}
			if l.KeepComments {
				return Token{Kind: Comment, Val: text, Pos: start}
			}
			continue
		case c == '\'':
			return l.scanString()
		case c == '[':
			return l.scanBracketIdent()
		case c == '"':
			return l.scanQuotedIdent()
		case c == '@':
			return l.scanVariable()
		case isDigit(c) || (c == '.' && isDigit(l.peekAt(1))):
			return l.scanNumber()
		case isIdentStart(c):
			return l.scanWord()
		default:
			return l.scanOp()
		}
	}
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
}

func (l *Lexer) scanLineComment() string {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *Lexer) scanBlockComment() string {
	start := l.pos
	l.pos += 2
	depth := 1 // T-SQL block comments nest
	for l.pos < len(l.src) {
		if l.src[l.pos] == '/' && l.peekAt(1) == '*' {
			depth++
			l.pos += 2
			continue
		}
		if l.src[l.pos] == '*' && l.peekAt(1) == '/' {
			depth--
			l.pos += 2
			if depth == 0 {
				return l.src[start:l.pos]
			}
			continue
		}
		l.pos++
	}
	l.setErr(start, "unterminated block comment")
	return l.src[start:l.pos]
}

func (l *Lexer) scanString() Token {
	start := l.pos
	l.pos++ // opening quote
	// Fast path: the first closing quote is not doubled, so the literal has
	// no '' escapes and the value is a slice of the source — no allocation.
	rest := l.src[l.pos:]
	if i := strings.IndexByte(rest, '\''); i >= 0 && (i+1 >= len(rest) || rest[i+1] != '\'') {
		l.pos += i + 1
		return Token{Kind: String, Val: rest[:i], Pos: start}
	}
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.peekAt(1) == '\'' { // '' escapes a quote
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: String, Val: b.String(), Pos: start}
		}
		b.WriteByte(c)
		l.pos++
	}
	l.setErr(start, "unterminated string literal")
	return Token{Kind: String, Val: b.String(), Pos: start}
}

func (l *Lexer) scanBracketIdent() Token {
	start := l.pos
	l.pos++ // [
	end := strings.IndexByte(l.src[l.pos:], ']')
	if end < 0 {
		l.setErr(start, "unterminated bracketed identifier")
		val := l.src[l.pos:]
		l.pos = len(l.src)
		return Token{Kind: QuotedIdent, Val: val, Pos: start}
	}
	val := l.src[l.pos : l.pos+end]
	l.pos += end + 1
	return Token{Kind: QuotedIdent, Val: val, Pos: start}
}

func (l *Lexer) scanQuotedIdent() Token {
	start := l.pos
	l.pos++ // "
	end := strings.IndexByte(l.src[l.pos:], '"')
	if end < 0 {
		l.setErr(start, "unterminated quoted identifier")
		val := l.src[l.pos:]
		l.pos = len(l.src)
		return Token{Kind: QuotedIdent, Val: val, Pos: start}
	}
	val := l.src[l.pos : l.pos+end]
	l.pos += end + 1
	return Token{Kind: QuotedIdent, Val: val, Pos: start}
}

func (l *Lexer) scanVariable() Token {
	start := l.pos
	l.pos++                 // @
	if l.peekAt(0) == '@' { // @@rowcount etc.
		l.pos++
	}
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	if l.pos == start+1 {
		l.setErr(start, "bare '@'")
	}
	return Token{Kind: Variable, Val: l.src[start:l.pos], Pos: start}
}

func (l *Lexer) scanNumber() Token {
	start := l.pos
	// hex literal 0x...
	if l.src[l.pos] == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.pos += 2
		for l.pos < len(l.src) && isHex(l.src[l.pos]) {
			l.pos++
		}
		return Token{Kind: Number, Val: l.src[start:l.pos], Pos: start}
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.peekAt(0) == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if c := l.peekAt(0); c == 'e' || c == 'E' {
		save := l.pos
		l.pos++
		if c := l.peekAt(0); c == '+' || c == '-' {
			l.pos++
		}
		if isDigit(l.peekAt(0)) {
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = save // 'e' belongs to a following identifier
		}
	}
	return Token{Kind: Number, Val: l.src[start:l.pos], Pos: start}
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) scanWord() Token {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	if kw, ok := KeywordCanon(word); ok {
		return Token{Kind: Keyword, Val: kw, Pos: start}
	}
	return Token{Kind: Ident, Val: word, Pos: start}
}

func (l *Lexer) scanOp() Token {
	start := l.pos
	if l.pos+1 < len(l.src) {
		switch two := l.src[l.pos : l.pos+2]; two {
		case "<>", "<=", ">=", "!=", "!<", "!>", "||", "+=", "-=", "*=", "/=":
			l.pos += 2
			return Token{Kind: Op, Val: two, Pos: start}
		}
	}
	c := l.src[l.pos]
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', '%', '.', ',', '(', ')', ';', '&', '|', '^', '~', '!', ':':
		l.pos++
		// Val slices the source instead of string(c): one op token used to
		// be one tiny heap allocation, and op tokens are ~15% of a typical
		// statement's token stream.
		return Token{Kind: Op, Val: l.src[start:l.pos], Pos: start}
	}
	l.setErr(start, "unexpected character %q", c)
	l.pos++
	return Token{Kind: Op, Val: l.src[start:l.pos], Pos: start}
}

// Canon returns the canonical (upper-cased) form of an identifier, used for
// case-insensitive comparison throughout the framework.
func Canon(ident string) string { return strings.ToUpper(ident) }
