package stream

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/core"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
	"sqlclean/internal/workload"
)

func TestStreamMergesStifleRun(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	p := New(Config{})
	var out logmodel.Log
	add := func(off time.Duration, user, stmt string) {
		emitted, err := p.Add(logmodel.Entry{Time: base.Add(off), User: user, Statement: stmt})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, emitted...)
	}
	add(0, "u", "SELECT name FROM Employees WHERE id = 1")
	add(time.Second, "u", "SELECT name FROM Employees WHERE id = 2")
	add(2*time.Second, "u", "SELECT name FROM Employees WHERE id = 3")
	// Nothing emitted while the session is open.
	if len(out) != 0 {
		t.Fatalf("premature emission: %v", out)
	}
	out = append(out, p.Close()...)
	if len(out) != 1 {
		t.Fatalf("clean: %v", out)
	}
	if got := out[0].Statement; got != "SELECT id, name FROM Employees WHERE id IN (1, 2, 3)" {
		t.Errorf("merged: %q", got)
	}
	st := p.Stats()
	if st.Antipatterns[antipattern.DWStifle] != 1 || st.SolvedQueries != 3 {
		t.Errorf("stats: %+v", st)
	}
}

func TestStreamTemplateKinds(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	p := New(Config{})
	stifled := "SELECT name FROM Employees WHERE id = %d"
	for i := 0; i < 3; i++ {
		if _, err := p.Add(logmodel.Entry{Time: base.Add(time.Duration(i) * time.Second), User: "u",
			Statement: fmt.Sprintf(stifled, i)}); err != nil {
			t.Fatal(err)
		}
	}
	// An innocent template from another user: must stay verdict-free.
	if _, err := p.Add(logmodel.Entry{Time: base, User: "v",
		Statement: "SELECT top 5 name FROM Employees"}); err != nil {
		t.Fatal(err)
	}
	if got := p.TemplateKinds(); len(got) != 0 {
		t.Fatalf("verdicts before any session closed: %v", got)
	}
	p.Close()

	kinds := p.TemplateKinds()
	var stifleFP uint64
	for _, ts := range p.Templates() {
		if ts.Frequency == 3 {
			stifleFP = ts.Fingerprint
		}
	}
	if got := kinds[stifleFP]; len(got) != 1 || got[0] != string(antipattern.DWStifle) {
		t.Fatalf("stifled template kinds = %v, want [%s] (all: %v)", got, antipattern.DWStifle, kinds)
	}
	if len(kinds) != 1 {
		t.Fatalf("innocent template got a verdict: %v", kinds)
	}

	// Verdicts survive a snapshot/restore round trip.
	p2 := New(Config{})
	if err := p2.Restore(p.Snapshot()); err != nil {
		t.Fatal(err)
	}
	kinds2 := p2.TemplateKinds()
	if len(kinds2) != 1 || len(kinds2[stifleFP]) != 1 || kinds2[stifleFP][0] != string(antipattern.DWStifle) {
		t.Fatalf("restored kinds = %v", kinds2)
	}
}

func TestStreamSessionClosesOnGap(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	p := New(Config{})
	out, _ := p.Add(logmodel.Entry{Time: base, User: "u", Statement: "SELECT name FROM Employees WHERE id = 1"})
	if len(out) != 0 {
		t.Fatal("early emission")
	}
	// 10 minutes later: the previous session closes and is emitted.
	out, err := p.Add(logmodel.Entry{Time: base.Add(10 * time.Minute), User: "u", Statement: "SELECT name FROM Employees WHERE id = 2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Statement != "SELECT name FROM Employees WHERE id = 1" {
		t.Fatalf("emitted: %v", out)
	}
	if p.OpenSessions() != 1 {
		t.Errorf("open sessions: %d", p.OpenSessions())
	}
}

func TestStreamWatermarkEvictsSilentUsers(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	p := New(Config{})
	_, _ = p.Add(logmodel.Entry{Time: base, User: "quiet", Statement: "SELECT 1"})
	// Another user's activity advances the watermark past quiet's gap.
	out, err := p.Add(logmodel.Entry{Time: base.Add(time.Hour), User: "busy", Statement: "SELECT 2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].User != "quiet" {
		t.Fatalf("eviction: %v", out)
	}
	if p.OpenSessions() != 1 {
		t.Errorf("open sessions: %d", p.OpenSessions())
	}
}

func TestStreamRejectsTimeTravel(t *testing.T) {
	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	p := New(Config{})
	if _, err := p.Add(logmodel.Entry{Time: base, User: "u", Statement: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Add(logmodel.Entry{Time: base.Add(-time.Hour), User: "u", Statement: "SELECT 2"}); err == nil {
		t.Fatal("want ordering error")
	}
}

func TestStreamDeduplicates(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	p := New(Config{})
	_, _ = p.Add(logmodel.Entry{Time: base, User: "u", Statement: "SELECT 1"})
	_, _ = p.Add(logmodel.Entry{Time: base.Add(200 * time.Millisecond), User: "u", Statement: "SELECT 1"})
	out := p.Close()
	if len(out) != 1 || p.Stats().Duplicates != 1 {
		t.Fatalf("dedup: %v, %+v", out, p.Stats())
	}
}

func statementMultiset(l logmodel.Log) map[string]int {
	m := map[string]int{}
	for _, e := range l {
		m[e.Statement]++
	}
	return m
}

// TestStreamMatchesBatchPipeline is the headline equivalence: over the full
// synthetic workload, the streaming pass must produce the same multiset of
// cleaned statements as the batch pipeline (modulo SWS handling, which the
// stream does not apply).
func TestStreamMatchesBatchPipeline(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.4))
	log.SortStable()

	batch, err := core.Run(log, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	streamed, st, err := Run(log, Config{})
	if err != nil {
		t.Fatal(err)
	}

	if st.Duplicates != batch.Dedup.Removed {
		t.Errorf("duplicates: stream %d, batch %d", st.Duplicates, batch.Dedup.Removed)
	}
	mb := statementMultiset(batch.Clean)
	ms := statementMultiset(streamed)
	if len(mb) != len(ms) {
		t.Fatalf("distinct statements: batch %d, stream %d", len(mb), len(ms))
	}
	for s, n := range mb {
		if ms[s] != n {
			t.Fatalf("statement %q: batch %d, stream %d", s, n, ms[s])
		}
	}
	// Template statistics agree with the batch miner.
	ts := New(Config{})
	for _, e := range log {
		if _, err := ts.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	ts.Close()
	streamT := ts.Templates()
	if len(streamT) != len(batch.Templates) {
		t.Fatalf("templates: stream %d, batch %d", len(streamT), len(batch.Templates))
	}
	batchBySkel := map[string]int{}
	for _, tt := range batch.Templates {
		batchBySkel[tt.Skeleton] = tt.Frequency
	}
	sort.Slice(streamT, func(i, j int) bool { return streamT[i].Skeleton < streamT[j].Skeleton })
	for _, tt := range streamT {
		if batchBySkel[tt.Skeleton] != tt.Frequency {
			t.Fatalf("template %q: stream %d, batch %d", tt.Skeleton, tt.Frequency, batchBySkel[tt.Skeleton])
		}
	}
}

// TestStreamBoundedMemory checks the memory bound: open sessions never
// exceed the number of concurrently active users.
func TestStreamBoundedMemory(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.5))
	log.SortStable()
	p := New(Config{})
	maxOpen := 0
	for _, e := range log {
		if _, err := p.Add(e); err != nil {
			t.Fatal(err)
		}
		if n := p.OpenSessions(); n > maxOpen {
			maxOpen = n
		}
	}
	p.Close()
	users := log.Users()
	if maxOpen > users {
		t.Fatalf("open sessions %d exceeded user count %d", maxOpen, users)
	}
	// The watermark eviction keeps the working set far below the total
	// user count on a 5-year log.
	if maxOpen > users/2 {
		t.Errorf("weak eviction: %d open of %d users", maxOpen, users)
	}
}

// TestStreamHighWaterMarkGauge pins the observable version of the memory
// bound: with many users interleaving over many rounds, the open-session
// gauge's high-water mark stays at the concurrent-user count, far below the
// total number of sessions the stream emits. This is the metric a production
// deployment would alert on.
func TestStreamHighWaterMarkGauge(t *testing.T) {
	const (
		users  = 50
		rounds = 10
	)
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	reg := obs.NewRegistry()
	p := New(Config{Metrics: reg})
	// Each round, every user issues a burst of queries; rounds are spaced
	// further apart than the session gap, so every round closes every
	// user's session — users×rounds sessions total, only `users` ever open.
	for round := 0; round < rounds; round++ {
		roundStart := base.Add(time.Duration(round) * time.Hour)
		for q := 0; q < 3; q++ {
			for u := 0; u < users; u++ {
				e := logmodel.Entry{
					Time:      roundStart.Add(time.Duration(q)*time.Second + time.Duration(u)*time.Millisecond),
					User:      fmt.Sprintf("user%02d", u),
					Statement: fmt.Sprintf("SELECT name FROM Employees WHERE id = %d", round*1000+q),
				}
				if _, err := p.Add(e); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	p.Close()

	st := p.Stats()
	totalSessions := users * rounds
	if st.SessionsEmitted != totalSessions {
		t.Fatalf("sessions emitted: %d, want %d", st.SessionsEmitted, totalSessions)
	}
	if st.OpenSessionsHighWater > users {
		t.Errorf("high-water mark %d exceeds concurrent users %d", st.OpenSessionsHighWater, users)
	}
	if st.OpenSessionsHighWater < users {
		t.Errorf("high-water mark %d never reached full concurrency %d", st.OpenSessionsHighWater, users)
	}
	// The gauge's Max agrees with the stats field, and the final value is 0.
	g := reg.Gauge("stream_open_sessions")
	if got := int(g.Max()); got != st.OpenSessionsHighWater {
		t.Errorf("gauge max %d != stats high water %d", got, st.OpenSessionsHighWater)
	}
	if g.Value() != 0 {
		t.Errorf("gauge not drained at close: %d", g.Value())
	}
	if int(g.Max()) >= totalSessions {
		t.Errorf("memory bound violated: peak %d not below total sessions %d", int(g.Max()), totalSessions)
	}
	if got := reg.Counter("stream_sessions_emitted_total").Value(); got != int64(totalSessions) {
		t.Errorf("emitted counter %d, want %d", got, totalSessions)
	}
}
