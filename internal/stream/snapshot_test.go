package stream

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
	"sqlclean/internal/workload"
)

// TestProcessorSnapshotRoundTrip is the core durability property at the
// processor level: cut a stream at an arbitrary point, snapshot, restore
// into a fresh processor (via JSON, as the daemon stores it), finish the
// stream — stats, templates and output must match the uninterrupted run.
func TestProcessorSnapshotRoundTrip(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.1))
	log.SortStable()
	for i := range log {
		log[i].Seq = int64(i)
	}

	run := func(cut int) (Stats, logmodel.Log) {
		p := New(Config{})
		var out logmodel.Log
		for i, e := range log {
			if i == cut {
				snap := p.Snapshot()
				blob, err := json.Marshal(snap)
				if err != nil {
					t.Fatal(err)
				}
				var decoded ProcessorSnapshot
				if err := json.Unmarshal(blob, &decoded); err != nil {
					t.Fatal(err)
				}
				p = New(Config{})
				if err := p.Restore(decoded); err != nil {
					t.Fatal(err)
				}
			}
			emitted, err := p.Add(e)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, emitted...)
		}
		out = append(out, p.Close()...)
		return p.Stats(), out
	}

	wantStats, wantOut := run(-1) // uninterrupted
	for _, cut := range []int{0, 1, len(log) / 3, len(log) / 2, len(log) - 1} {
		gotStats, gotOut := run(cut)
		if !reflect.DeepEqual(gotStats, wantStats) {
			t.Errorf("cut %d: stats diverged:\n got %+v\nwant %+v", cut, gotStats, wantStats)
		}
		if len(gotOut) != len(wantOut) {
			t.Fatalf("cut %d: %d output entries, want %d", cut, len(gotOut), len(wantOut))
		}
		for i := range gotOut {
			if gotOut[i].Statement != wantOut[i].Statement || !gotOut[i].Time.Equal(wantOut[i].Time) {
				t.Fatalf("cut %d: output %d diverged: %+v vs %+v", cut, i, gotOut[i], wantOut[i])
			}
		}
	}
}

// TestProcessorSnapshotPrunesDedup pins the dedup-window pruning: slots the
// watermark proves unreachable are dropped, live ones survive.
func TestProcessorSnapshotPrunesDedup(t *testing.T) {
	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	p := New(Config{SessionGap: time.Minute, DuplicateThreshold: time.Second})
	add := func(min int, user string) {
		_, err := p.Add(logmodel.Entry{Time: base.Add(time.Duration(min) * time.Minute), User: user,
			Statement: "SELECT name FROM Employees WHERE id = 1"})
		if err != nil {
			t.Fatal(err)
		}
	}
	add(0, "old")  // will fall behind the horizon
	add(10, "new") // at the watermark
	snap := p.Snapshot()
	if len(snap.Dedup) != 1 || snap.Dedup[0].User != "new" {
		t.Fatalf("dedup snapshot = %+v, want only the live slot", snap.Dedup)
	}
	if len(p.lastSeen) != 2 {
		t.Fatalf("snapshot must not mutate the live window (len=%d)", len(p.lastSeen))
	}
}

// TestShardedSnapshotRoundTrip cuts a sharded stream, snapshots, restores
// into a fresh engine and finishes — merged stats and templates must match
// an uninterrupted sharded run, and restore must reject a shard mismatch.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.1))
	log.SortStable()
	for i := range log {
		log[i].Seq = int64(i)
	}
	cfg := ShardedConfig{Shards: 8, SweepEvery: 64}

	run := func(cut int) (Stats, int) {
		eng := NewSharded(cfg)
		for i, e := range log {
			if i == cut {
				snap := eng.Snapshot()
				blob, err := json.Marshal(snap)
				if err != nil {
					t.Fatal(err)
				}
				var decoded ShardedSnapshot
				if err := json.Unmarshal(blob, &decoded); err != nil {
					t.Fatal(err)
				}
				eng = NewSharded(cfg)
				if err := eng.Restore(decoded); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := eng.Add(e); err != nil {
				t.Fatal(err)
			}
		}
		eng.Close()
		return eng.Stats(), len(eng.Templates())
	}

	wantStats, wantTmpl := run(-1)
	gotStats, gotTmpl := run(len(log) / 2)
	// The open-session high water depends on sweep timing relative to the
	// cut; every counting stat must match exactly.
	gotStats.OpenSessionsHighWater = wantStats.OpenSessionsHighWater
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Errorf("sharded stats diverged:\n got %+v\nwant %+v", gotStats, wantStats)
	}
	if gotTmpl != wantTmpl {
		t.Errorf("templates: got %d want %d", gotTmpl, wantTmpl)
	}

	other := NewSharded(ShardedConfig{Shards: 4})
	if err := other.Restore(ShardedSnapshot{Shards: 8, Procs: make([]ProcessorSnapshot, 8)}); err == nil {
		t.Error("Restore accepted a shard-count mismatch")
	}
}

// TestShardForDeterministic pins the routing function across processes: the
// values below were computed once and must never change, or snapshots taken
// by old binaries would restore onto the wrong shards.
func TestShardForDeterministic(t *testing.T) {
	eng := NewSharded(ShardedConfig{Shards: 16})
	want := map[string]uint64{
		"":              0xcbf29ce484222325,
		"alice":         0x508b2abb65a03907,
		"192.168.0.1":   0x2e9082d8e3366183,
		"bob@skyserver": 0xefc16191c3874dc6,
	}
	for user, h := range want {
		if got := userHash(user); got != h {
			t.Errorf("userHash(%q) = %#x, want %#x (routing function changed!)", user, got, h)
		}
		if got := eng.ShardFor(user); got != int(h&15) {
			t.Errorf("ShardFor(%q) = %d, want %d", user, got, int(h&15))
		}
	}
}

// TestMaxFutureSkewGuard pins the watermark guard: a corrupted far-future
// entry is rejected (counted) and does not poison the watermark, so in-order
// entries keep flowing and open sessions survive the next sweep.
func TestMaxFutureSkewGuard(t *testing.T) {
	reg := obs.NewRegistry()
	base := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	eng := NewSharded(ShardedConfig{
		Shards: 4, SweepEvery: 1, MaxFutureSkew: time.Hour,
		Config: Config{SessionGap: time.Minute, Metrics: reg},
	})
	add := func(tm time.Time, user string) error {
		_, err := eng.Add(logmodel.Entry{Time: tm, User: user,
			Statement: "SELECT name FROM Employees WHERE id = 1"})
		return err
	}
	if err := add(base, "alice"); err != nil {
		t.Fatal(err)
	}
	// Corrupted entry: 30 years in the future.
	err := add(base.AddDate(30, 0, 0), "mallory")
	if !errors.Is(err, ErrFutureSkew) {
		t.Fatalf("far-future entry: err=%v, want ErrFutureSkew", err)
	}
	// The watermark must not have moved: alice's session survives the sweep
	// and her next in-order entry is accepted.
	if err := add(base.Add(10*time.Second), "alice"); err != nil {
		t.Fatalf("in-order entry rejected after guarded skew: %v", err)
	}
	if eng.OpenSessions() != 1 {
		t.Errorf("open sessions = %d, want 1 (session must survive)", eng.OpenSessions())
	}
	if n := reg.Snapshot().Counters["stream_rejected_future_skew_total"]; n != 1 {
		t.Errorf("skew rejections counter = %d, want 1", n)
	}
	// Within the bound, the watermark still advances freely.
	if err := add(base.Add(30*time.Minute), "alice"); err != nil {
		t.Fatal(err)
	}
	// The first entry ever is exempt (no watermark yet).
	fresh := NewSharded(ShardedConfig{Shards: 2, MaxFutureSkew: time.Hour})
	if _, err := fresh.Add(logmodel.Entry{Time: base.AddDate(30, 0, 0), User: "u", Statement: "SELECT 1"}); err != nil {
		t.Errorf("first entry rejected by skew guard: %v", err)
	}
}
