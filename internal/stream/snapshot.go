// Snapshot / restore of streaming state. The daemon's durability story is
// WAL + checkpoint: the journal replays every accepted entry since the last
// checkpoint, and the checkpoint is exactly the state serialized here — the
// merged counters, the open sessions (raw entries; parse results are
// recomputed on restore, the parser is deterministic), the live slice of the
// dedup window, the template aggregates and the watermarks. "Query Log
// Compression for Workload Analytics" (Xie et al. 2018) observes that
// log-workload state is dominated by a small set of templates, which is why
// this whole structure stays small enough to checkpoint cheaply even after
// months of traffic: sessions close within minutes, the dedup window is
// pruned to the reachable horizon, and templates grow with the number of
// distinct query shapes, not with traffic.
package stream

import (
	"fmt"
	"math"
	"sort"
	"time"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/sketch"
)

// EntrySnapshot is one raw log entry in serialized form (times as Unix
// nanoseconds so no precision is lost across the JSON round trip).
type EntrySnapshot struct {
	Seq       int64  `json:"seq"`
	TimeNS    int64  `json:"time_ns"`
	User      string `json:"user,omitempty"`
	Session   string `json:"session,omitempty"`
	Rows      int64  `json:"rows"`
	Statement string `json:"statement"`
}

func snapEntry(e logmodel.Entry) EntrySnapshot {
	return EntrySnapshot{
		Seq: e.Seq, TimeNS: e.Time.UnixNano(),
		User: e.User, Session: e.Session, Rows: e.Rows, Statement: e.Statement,
	}
}

func (s EntrySnapshot) entry() logmodel.Entry {
	return logmodel.Entry{
		Seq: s.Seq, Time: time.Unix(0, s.TimeNS).UTC(),
		User: s.User, Session: s.Session, Rows: s.Rows, Statement: s.Statement,
	}
}

// SessionSnapshot is one open session.
type SessionSnapshot struct {
	User    string          `json:"user"`
	Label   string          `json:"label,omitempty"`
	LastNS  int64           `json:"last_ns"`
	Entries []EntrySnapshot `json:"entries"`
}

// DedupSnapshot is one live slot of the duplicate window.
type DedupSnapshot struct {
	User      string `json:"user,omitempty"`
	Statement string `json:"statement"`
	LastNS    int64  `json:"last_ns"`
}

// TemplateSnapshot is one template aggregate.
type TemplateSnapshot struct {
	Fingerprint uint64   `json:"fingerprint"`
	Skeleton    string   `json:"skeleton"`
	Count       int      `json:"count"`
	Users       []string `json:"users"`
	// Kinds are the antipattern kinds attributed to the template so far
	// (absent in snapshots written before verdict tracking existed).
	Kinds []string `json:"kinds,omitempty"`
}

// ProcessorSnapshot is the full serializable state of one Processor.
type ProcessorSnapshot struct {
	Stats Stats `json:"stats"`
	// WatermarkValid distinguishes "never saw an entry" from any real time.
	WatermarkValid bool               `json:"watermark_valid"`
	WatermarkNS    int64              `json:"watermark_ns"`
	Open           []SessionSnapshot  `json:"open,omitempty"`
	Dedup          []DedupSnapshot    `json:"dedup,omitempty"`
	Templates      []TemplateSnapshot `json:"templates,omitempty"`
	// Sketches carries the approximate-analytics state (its own versioned
	// encoding). Absent when the layer is disabled — and in snapshots written
	// before the layer existed, which restore to fresh sketches.
	Sketches *sketch.Snapshot `json:"sketches,omitempty"`
}

// Snapshot serializes the processor's state. The dedup window is pruned to
// entries still reachable by a future in-order entry: anything older than
// watermark − gap − threshold can never match again, so a restore without it
// is byte-identical in outcome (the full map would otherwise grow with every
// distinct (user, statement) pair ever seen).
func (p *Processor) Snapshot() ProcessorSnapshot {
	s := ProcessorSnapshot{Stats: p.stats}
	if !p.watermark.IsZero() {
		s.WatermarkValid = true
		s.WatermarkNS = p.watermark.UnixNano()
	}
	for _, os := range p.open {
		ss := SessionSnapshot{User: os.user, Label: os.label, LastNS: os.last.UnixNano()}
		for _, pe := range os.entries {
			ss.Entries = append(ss.Entries, snapEntry(pe.Entry))
		}
		s.Open = append(s.Open, ss)
	}
	sort.Slice(s.Open, func(i, j int) bool { return s.Open[i].User < s.Open[j].User })
	horizon := p.watermark.Add(-p.cfg.SessionGap - p.cfg.DuplicateThreshold)
	for k, last := range p.lastSeen {
		if last.Before(horizon) {
			continue
		}
		s.Dedup = append(s.Dedup, DedupSnapshot{User: k.user, Statement: k.stmt, LastNS: last.UnixNano()})
	}
	sort.Slice(s.Dedup, func(i, j int) bool {
		if s.Dedup[i].User != s.Dedup[j].User {
			return s.Dedup[i].User < s.Dedup[j].User
		}
		return s.Dedup[i].Statement < s.Dedup[j].Statement
	})
	for fp, a := range p.templateAgg {
		users := make([]string, 0, len(a.users))
		for u := range a.users {
			users = append(users, u)
		}
		sort.Strings(users)
		var kinds []string
		for k := range a.kinds {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		s.Templates = append(s.Templates, TemplateSnapshot{
			Fingerprint: fp, Skeleton: a.skeleton, Count: a.count, Users: users, Kinds: kinds,
		})
	}
	sort.Slice(s.Templates, func(i, j int) bool { return s.Templates[i].Fingerprint < s.Templates[j].Fingerprint })
	if p.sk != nil {
		s.Sketches = p.sk.Snapshot()
	}
	return s
}

// Restore replaces the processor's state with a snapshot. Open-session
// entries are re-parsed through the processor's parser (statement texts are
// the canonical state; parse results are derived and deterministic).
func (p *Processor) Restore(s ProcessorSnapshot) error {
	p.stats = s.Stats
	if p.stats.Antipatterns != nil {
		// The snapshot owner may reuse the map; copy defensively.
		m := make(map[antipattern.Kind]int, len(p.stats.Antipatterns))
		for k, v := range p.stats.Antipatterns {
			m[k] = v
		}
		p.stats.Antipatterns = m
	}
	p.watermark = time.Time{}
	if s.WatermarkValid {
		p.watermark = time.Unix(0, s.WatermarkNS).UTC()
	}
	p.open = make(map[string]*openSession, len(s.Open))
	for _, ss := range s.Open {
		if len(ss.Entries) == 0 {
			return fmt.Errorf("stream: snapshot session for %q has no entries", ss.User)
		}
		os := &openSession{user: ss.User, label: ss.Label, last: time.Unix(0, ss.LastNS).UTC()}
		for _, es := range ss.Entries {
			os.entries = append(os.entries, p.parser.ParseEntry(es.entry()))
		}
		p.open[ss.User] = os
	}
	p.lastSeen = make(map[dupKey]time.Time, len(s.Dedup))
	for _, d := range s.Dedup {
		p.lastSeen[dupKey{user: d.User, stmt: d.Statement}] = time.Unix(0, d.LastNS).UTC()
	}
	p.templateAgg = make(map[uint64]*templateAgg, len(s.Templates))
	for _, t := range s.Templates {
		a := &templateAgg{skeleton: t.Skeleton, count: t.Count, users: make(map[string]struct{}, len(t.Users))}
		for _, u := range t.Users {
			a.users[u] = struct{}{}
		}
		if len(t.Kinds) > 0 {
			a.kinds = make(map[antipattern.Kind]struct{}, len(t.Kinds))
			for _, k := range t.Kinds {
				a.kinds[antipattern.Kind(k)] = struct{}{}
			}
		}
		p.templateAgg[t.Fingerprint] = a
	}
	switch {
	case p.sk == nil:
		// Sketches disabled in this processor's config: ignore any snapshot
		// state, the layer stays off.
	case s.Sketches != nil:
		sk, err := sketch.Restore(s.Sketches)
		if err != nil {
			return err
		}
		p.sk = sk
	default:
		// Pre-sketch snapshot: start the layer fresh from here on.
		p.sk = sketch.New(p.cfg.Sketches)
	}
	p.met.open.Set(int64(len(p.open)))
	return nil
}

// ShardedSnapshot is the full serializable state of a Sharded engine.
type ShardedSnapshot struct {
	// Shards pins the partition count: restore requires the same count, or
	// per-shard state (dedup windows, open sessions) would land on the wrong
	// partitions. Routing itself is deterministic (see userHash).
	Shards int `json:"shards"`
	// WatermarkValid/WatermarkNS carry the global event-time watermark.
	WatermarkValid bool                `json:"watermark_valid"`
	WatermarkNS    int64               `json:"watermark_ns"`
	OpenHigh       int64               `json:"open_sessions_high_water"`
	Procs          []ProcessorSnapshot `json:"procs"`
}

// Snapshot serializes every shard plus the coordinator state. The caller
// must ensure the engine is quiescent (no concurrent Adds) if the snapshot
// is to be consistent with an external position such as a journal LSN; the
// method itself is safe to call concurrently.
func (s *Sharded) Snapshot() ShardedSnapshot {
	snap := ShardedSnapshot{
		Shards:   len(s.shards),
		OpenHigh: s.openHigh.Load(),
	}
	if wm := s.watermarkNS.Load(); wm != math.MinInt64 {
		snap.WatermarkValid = true
		snap.WatermarkNS = wm
	}
	snap.Procs = make([]ProcessorSnapshot, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		snap.Procs[i] = sh.p.Snapshot()
		sh.mu.Unlock()
	}
	return snap
}

// Restore replaces the engine's state with a snapshot taken by an engine
// with the same shard count.
func (s *Sharded) Restore(snap ShardedSnapshot) error {
	if snap.Shards != len(s.shards) {
		return fmt.Errorf("stream: snapshot has %d shards, engine has %d (restart with -shards %d)",
			snap.Shards, len(s.shards), snap.Shards)
	}
	if len(snap.Procs) != snap.Shards {
		return fmt.Errorf("stream: snapshot carries %d shard states for %d shards", len(snap.Procs), snap.Shards)
	}
	var open int64
	for i, sh := range s.shards {
		sh.mu.Lock()
		err := sh.p.Restore(snap.Procs[i])
		n := len(sh.p.open)
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("stream: restore shard %d: %w", i, err)
		}
		open += int64(n)
	}
	if snap.WatermarkValid {
		s.watermarkNS.Store(snap.WatermarkNS)
	} else {
		s.watermarkNS.Store(math.MinInt64)
	}
	s.openCount.Store(open)
	s.openHigh.Store(snap.OpenHigh)
	s.gauge.Set(open)
	return nil
}
