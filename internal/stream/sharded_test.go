package stream

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sqlclean/internal/core"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/workload"
)

// TestShardedMatchesBatchPipeline is the acceptance equivalence: the sharded
// streaming engine must produce the same multiset of cleaned statements and
// the same dedup/template statistics as the serial batch pipeline on the
// seed workload (order-normalized — emission order differs by construction).
func TestShardedMatchesBatchPipeline(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.4))
	log.SortStable()

	batch, err := core.Run(log, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		streamed, st, err := RunSharded(log, ShardedConfig{Shards: 8, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if st.Duplicates != batch.Dedup.Removed {
			t.Errorf("workers %d: duplicates: sharded %d, batch %d", workers, st.Duplicates, batch.Dedup.Removed)
		}
		mb := statementMultiset(batch.Clean)
		ms := statementMultiset(streamed)
		if len(mb) != len(ms) {
			t.Fatalf("workers %d: distinct statements: batch %d, sharded %d", workers, len(mb), len(ms))
		}
		for s, n := range mb {
			if ms[s] != n {
				t.Fatalf("workers %d: statement %q: batch %d, sharded %d", workers, s, n, ms[s])
			}
		}
	}
}

// TestShardedMatchesSerialStream pins the sharded engine against the serial
// Processor: identical output multiset and identical additive counters.
func TestShardedMatchesSerialStream(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.3))
	log.SortStable()

	serialOut, serialStats, err := Run(log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	shardedOut, shardedStats, err := RunSharded(log, ShardedConfig{Shards: 16, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serialStats.In != shardedStats.In ||
		serialStats.Selects != shardedStats.Selects ||
		serialStats.Duplicates != shardedStats.Duplicates ||
		serialStats.Out != shardedStats.Out ||
		serialStats.SolvedQueries != shardedStats.SolvedQueries ||
		serialStats.SessionsEmitted != shardedStats.SessionsEmitted {
		t.Errorf("stats: serial %+v, sharded %+v", serialStats, shardedStats)
	}
	for k, n := range serialStats.Antipatterns {
		if shardedStats.Antipatterns[k] != n {
			t.Errorf("antipattern %s: serial %d, sharded %d", k, n, shardedStats.Antipatterns[k])
		}
	}
	ms, mo := statementMultiset(serialOut), statementMultiset(shardedOut)
	if len(ms) != len(mo) {
		t.Fatalf("distinct statements: serial %d, sharded %d", len(ms), len(mo))
	}
	for s, n := range ms {
		if mo[s] != n {
			t.Fatalf("statement %q: serial %d, sharded %d", s, n, mo[s])
		}
	}

	// Template statistics merge exactly across shards.
	eng := NewSharded(ShardedConfig{Shards: 16})
	for _, e := range log {
		if _, err := eng.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()
	serialProc := New(Config{})
	for _, e := range log {
		if _, err := serialProc.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	serialProc.Close()
	st, ss := eng.Templates(), serialProc.Templates()
	if len(st) != len(ss) {
		t.Fatalf("templates: sharded %d, serial %d", len(st), len(ss))
	}
	bySkel := map[string][2]int{}
	for _, tt := range ss {
		bySkel[tt.Skeleton] = [2]int{tt.Frequency, tt.UserPopularity}
	}
	for _, tt := range st {
		want := bySkel[tt.Skeleton]
		if tt.Frequency != want[0] || tt.UserPopularity != want[1] {
			t.Fatalf("template %q: sharded freq=%d pop=%d, serial freq=%d pop=%d",
				tt.Skeleton, tt.Frequency, tt.UserPopularity, want[0], want[1])
		}
	}
}

// TestAddShardBatchMatchesAddShard pins the batch entry point's faithfulness:
// the same stream applied per entry and in batches (of varying sizes, split
// mid-shard) must leave two engines in identical states — stats, templates,
// watermark, open sessions — and produce the same outputs in the same order.
func TestAddShardBatchMatchesAddShard(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.2))
	log.SortStable()
	cfg := ShardedConfig{Shards: 4}

	perEntry := NewSharded(cfg)
	batched := NewSharded(cfg)

	var outA, outB logmodel.Log
	// Per-entry reference.
	for _, e := range log {
		out, err := perEntry.AddShard(perEntry.ShardFor(e.User), e)
		if err != nil {
			t.Fatal(err)
		}
		outA = append(outA, out...)
	}
	// Batched: feed maximal same-shard runs of the input, so the global
	// apply order is identical to the per-entry pass and every divergence
	// is attributable to the batch entry point itself. Runs longer than one
	// entry exercise multi-entry batches; a multiset check would hide
	// nothing here — order must match too.
	batches := 0
	for start := 0; start < len(log); {
		i := batched.ShardFor(log[start].User)
		end := start + 1
		for end < len(log) && batched.ShardFor(log[end].User) == i {
			end++
		}
		batched.AddShardBatch(i, log[start:end], func(k int, out logmodel.Log, err error) {
			if err != nil {
				t.Fatal(err)
			}
			outB = append(outB, out...)
		})
		if end-start > 1 {
			batches++
		}
		start = end
	}
	if batches == 0 {
		t.Fatal("input produced no multi-entry batches; the test lost its point")
	}
	outA = append(outA, perEntry.Close()...)
	outB = append(outB, batched.Close()...)

	if sa, sb := perEntry.Stats(), batched.Stats(); fmt.Sprintf("%+v", sa) != fmt.Sprintf("%+v", sb) {
		t.Errorf("stats diverged:\nper-entry %+v\nbatched   %+v", sa, sb)
	}
	if wa, wb := perEntry.Watermark(), batched.Watermark(); !wa.Equal(wb) {
		t.Errorf("watermark diverged: per-entry %v, batched %v", wa, wb)
	}
	if len(outA) != len(outB) {
		t.Fatalf("output length: per-entry %d, batched %d", len(outA), len(outB))
	}
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("output %d diverged: per-entry %+v, batched %+v", i, outA[i], outB[i])
		}
	}
	ta, tb := perEntry.Templates(), batched.Templates()
	if len(ta) != len(tb) {
		t.Fatalf("templates: per-entry %d, batched %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("template %d diverged: per-entry %+v, batched %+v", i, ta[i], tb[i])
		}
	}
}

// TestShardedConcurrentAdds hammers the engine from 8 goroutines (each
// owning disjoint users, preserving the per-user ordering contract) and
// checks nothing is lost or double-counted. Run with -race.
func TestShardedConcurrentAdds(t *testing.T) {
	const (
		clients = 8
		perUser = 50
	)
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	reg := obs.NewRegistry()
	eng := NewSharded(ShardedConfig{Shards: 4, SweepEvery: 32, Config: Config{Metrics: reg}})

	var mu sync.Mutex
	var emitted logmodel.Log
	// Clients proceed in lockstep rounds: within a round all 8 add
	// concurrently (same timestamp — racing on shard locks, the shared
	// parser and the sweep), and the barrier between rounds preserves the
	// per-shard time-ordering contract.
	for i := 0; i < perUser; i++ {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				e := logmodel.Entry{
					Time:      base.Add(time.Duration(i) * 20 * time.Minute), // every round its own session
					User:      fmt.Sprintf("client%02d", c),
					Statement: fmt.Sprintf("SELECT name FROM Employees WHERE id = %d", c*1000+i),
				}
				out, err := eng.Add(e)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				emitted = append(emitted, out...)
				mu.Unlock()
			}(c)
		}
		wg.Wait()
	}
	emitted = append(emitted, eng.Close()...)

	st := eng.Stats()
	want := clients * perUser
	if st.In != want || st.Selects != want || st.Out != want {
		t.Errorf("stats: %+v, want in=selects=out=%d", st, want)
	}
	if len(emitted) != want {
		t.Errorf("emitted %d entries, want %d", len(emitted), want)
	}
	if st.SessionsEmitted != want {
		t.Errorf("sessions emitted %d, want %d", st.SessionsEmitted, want)
	}
	if hw := st.OpenSessionsHighWater; hw < 1 || hw > clients {
		t.Errorf("open-session high water %d outside [1, %d]", hw, clients)
	}
	if g := reg.Gauge("stream_open_sessions"); g.Value() != 0 {
		t.Errorf("open-session gauge not drained: %d", g.Value())
	}
}

// TestShardedWatermarkSweep checks the cross-shard window merge: a session
// in a quiet partition is closed by other partitions' traffic advancing the
// global watermark — without its own shard ever seeing another entry and
// without Close.
func TestShardedWatermarkSweep(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	eng := NewSharded(ShardedConfig{Shards: 8, SweepEvery: 4})

	// Find two users in different shards.
	quiet := "quiet-user"
	busy := ""
	for i := 0; ; i++ {
		u := fmt.Sprintf("busy%d", i)
		if eng.ShardFor(u) != eng.ShardFor(quiet) {
			busy = u
			break
		}
	}

	if _, err := eng.Add(logmodel.Entry{Time: base, User: quiet, Statement: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	// Busy traffic far past quiet's gap + lateness; enough adds to trigger
	// the periodic sweep.
	var got logmodel.Log
	for i := 0; i < 16; i++ {
		out, err := eng.Add(logmodel.Entry{
			Time:      base.Add(time.Hour + time.Duration(i)*time.Second),
			User:      busy,
			Statement: "SELECT 2",
		})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, out...)
	}
	found := false
	for _, e := range got {
		if e.User == quiet {
			found = true
		}
	}
	if !found {
		t.Fatalf("quiet user's session not swept out; emitted: %v", got)
	}
	if eng.OpenSessions() != 1 {
		t.Errorf("open sessions: %d, want 1 (busy only)", eng.OpenSessions())
	}
}

// TestShardedSharedParser pins the shared parse cache: two shards seeing the
// same statement text produce one cache miss and one hit, aggregated in the
// registry the parser was instrumented with.
func TestShardedSharedParser(t *testing.T) {
	reg := obs.NewRegistry()
	parser := parsedlog.NewParser()
	parser.Instrument(reg)
	eng := NewSharded(ShardedConfig{Shards: 4, Config: Config{Parser: parser}})

	// Two users in different shards issuing the identical statement.
	a := "alice"
	b := ""
	for i := 0; ; i++ {
		u := fmt.Sprintf("bob%d", i)
		if eng.ShardFor(u) != eng.ShardFor(a) {
			b = u
			break
		}
	}
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	const stmt = "SELECT name FROM Employees WHERE id = 7"
	if _, err := eng.Add(logmodel.Entry{Time: base, User: a, Statement: stmt}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Add(logmodel.Entry{Time: base.Add(time.Second), User: b, Statement: stmt}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("parse_cache_misses_total").Value(); got != 1 {
		t.Errorf("cache misses: %d, want 1 (shared cache)", got)
	}
	if got := reg.Counter("parse_cache_hits_total").Value(); got != 1 {
		t.Errorf("cache hits: %d, want 1", got)
	}
}
