package stream

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"sqlclean/internal/core"
	"sqlclean/internal/pattern"
	"sqlclean/internal/sketch"
	"sqlclean/internal/workload"
)

// TestStreamingSWSMatchesBatch is the acceptance property: after the stream
// drains, the windowed SWS classifier's verdict must be byte-identical to the
// batch pipeline's (core.Run) on seeded logs — for the default thresholds and
// for harder variants, and regardless of how the evidence was windowed.
func TestStreamingSWSMatchesBatch(t *testing.T) {
	opts := []pattern.SWSOptions{
		pattern.DefaultSWSOptions(),
		{FrequencyPct: 0.05, MaxUserPopularity: 5, MinDisjointRatio: 0.3},
		{FrequencyPct: 0.01, MaxUserPopularity: 12, MinDisjointRatio: 0.9},
	}
	nonEmpty := 0
	for _, seed := range []int64{1, 7, 42} {
		cfg := workload.DefaultConfig().Scale(0.1)
		cfg.Seed = seed
		log, _ := workload.Generate(cfg)
		log.SortStable()
		for i := range log {
			log[i].Seq = int64(i)
		}

		batch, err := core.Run(log, core.Config{})
		if err != nil {
			t.Fatal(err)
		}

		// A deliberately tiny window forces constant flushing; the verdict
		// must not care.
		p := New(Config{Sketches: sketch.Config{SWSWindow: 10 * time.Minute, SWSMaxWindows: 2}})
		for _, e := range log {
			if _, err := p.Add(e); err != nil {
				t.Fatal(err)
			}
		}
		p.Close()
		if p.Stats().Selects != len(batch.PreClean) {
			t.Fatalf("seed %d: stream accepted %d selects, batch kept %d", seed, p.Stats().Selects, len(batch.PreClean))
		}
		if p.Sketches().SWS.Flushes() == 0 {
			t.Fatalf("seed %d: the tiny window never flushed; windowing is untested", seed)
		}

		for _, opt := range opts {
			want := pattern.ClassifySWS(batch.Templates, len(batch.PreClean), opt)
			got := p.ClassifySWS(opt)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d opt %+v: streaming SWS %v, batch %v", seed, opt, got, want)
			}
			nonEmpty += len(got)
		}
		// The default-threshold verdict is also what core.Run itself reports.
		if got := p.ClassifySWS(pattern.DefaultSWSOptions()); !reflect.DeepEqual(got, batch.SWS) {
			t.Errorf("seed %d: streaming default SWS %v, core.Run reported %v", seed, got, batch.SWS)
		}

		// The distinct-identity sketch must track the exact user count within
		// the acceptance bound.
		exact := map[string]struct{}{}
		for _, e := range log {
			exact[e.User] = struct{}{}
		}
		est := p.Sketches().HLL.Estimate()
		if rel := math.Abs(est-float64(len(exact))) / float64(len(exact)); rel > 0.02 {
			t.Errorf("seed %d: HLL estimate %.1f for %d users (relative error %.4f)", seed, est, len(exact), rel)
		}
	}
	if nonEmpty == 0 {
		t.Fatal("no (seed, option) pair classified any template as SWS; the property test is vacuous")
	}
}

// TestShardedSketchSnapshotRoundTrip is the durability property for the
// sketch layer: cut a sharded stream mid-flight, snapshot, restore into a
// fresh engine, finish — the merged cross-shard sketches must equal the
// uninterrupted run's, at 1 and 4 workers, and re-snapshotting immediately
// after restore must reproduce the decoded snapshot.
func TestShardedSketchSnapshotRoundTrip(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.1))
	log.SortStable()
	for i := range log {
		log[i].Seq = int64(i)
	}

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := ShardedConfig{Shards: 8, SweepEvery: 64, Workers: workers,
				Config: Config{Sketches: sketch.Config{HLLPrecision: 12, TopK: 32, SWSWindow: time.Hour, SWSMaxWindows: 3}}}

			run := func(cut int) *sketch.Sketches {
				eng := NewSharded(cfg)
				for i, e := range log {
					if i == cut {
						blob, err := json.Marshal(eng.Snapshot())
						if err != nil {
							t.Fatal(err)
						}
						var decoded ShardedSnapshot
						if err := json.Unmarshal(blob, &decoded); err != nil {
							t.Fatal(err)
						}
						eng = NewSharded(cfg)
						if err := eng.Restore(decoded); err != nil {
							t.Fatal(err)
						}
						// Restore must be lossless: a snapshot taken right
						// now reproduces the decoded one, sketches included.
						if again := eng.Snapshot(); !reflect.DeepEqual(again, decoded) {
							t.Fatal("re-snapshot after restore differs from the restored snapshot")
						}
					}
					if _, err := eng.Add(e); err != nil {
						t.Fatal(err)
					}
				}
				eng.Close()
				return eng.Sketches()
			}

			want := run(-1)
			if want.HLL.Occupied() == 0 || want.Top.Len() == 0 || len(want.SWS.MergedEvidence()) == 0 {
				t.Fatal("uninterrupted run left a sketch empty; the round trip proves nothing")
			}
			got := run(len(log) / 2)
			if !reflect.DeepEqual(got.HLL.Snapshot(), want.HLL.Snapshot()) {
				t.Error("merged HLL registers diverged across the snapshot cut")
			}
			if !reflect.DeepEqual(got.Top.Snapshot(), want.Top.Snapshot()) {
				t.Error("merged SpaceSaving state diverged across the snapshot cut")
			}
			if !reflect.DeepEqual(got.SWS.MergedEvidence(), want.SWS.MergedEvidence()) {
				t.Error("merged SWS evidence diverged across the snapshot cut")
			}
			opt := pattern.SWSOptions{FrequencyPct: 0.01, MaxUserPopularity: 12, MinDisjointRatio: 0.9}
			if !reflect.DeepEqual(got.SWS.Classify(3000, opt), want.SWS.Classify(3000, opt)) {
				t.Error("SWS classification diverged across the snapshot cut")
			}
		})
	}
}

// TestRestoreKeepsSnapshotSketchParameters pins the restore policy: the
// snapshot's own sketch parameters win over the restarted config's flags, and
// a pre-sketch snapshot (no sketches field) restores to fresh sketches.
func TestRestoreKeepsSnapshotSketchParameters(t *testing.T) {
	p := New(Config{Sketches: sketch.Config{HLLPrecision: 10}})
	snap := p.Snapshot()
	if snap.Sketches == nil || snap.Sketches.Version != sketch.SnapshotVersion {
		t.Fatalf("snapshot sketches = %+v, want version %d", snap.Sketches, sketch.SnapshotVersion)
	}

	q := New(Config{Sketches: sketch.Config{HLLPrecision: 14}})
	if err := q.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := q.Sketches().HLL.Precision(); got != 10 {
		t.Errorf("restored precision %d, want the snapshot's 10 over the flag's 14", got)
	}

	snap.Sketches = nil // a snapshot from before the sketch layer existed
	if err := q.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if q.Sketches() == nil || q.Sketches().HLL.Precision() != 14 {
		t.Error("pre-sketch snapshot must restore fresh sketches from the config")
	}

	d := New(Config{Sketches: sketch.Config{Disabled: true}})
	if d.Sketches() != nil {
		t.Fatal("disabled config still built sketches")
	}
	if err := d.Restore(p.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if d.Sketches() != nil {
		t.Error("restore resurrected sketches on a disabled processor")
	}
	if d.ClassifySWS(pattern.DefaultSWSOptions()) != nil {
		t.Error("ClassifySWS on a disabled processor must be nil")
	}
}
