// Sharded streaming: the multi-core variant of Processor. The serial stream
// exploits that detection windows are confined to one user session; sharding
// exploits the next invariant out: *users* are independent too. Entries are
// partitioned by user hash into independent shard processors — dedup keys
// (user, statement) and sessions (per user) both live wholly inside one
// shard — so shards only ever synchronize on two things: the shared
// statement-parse cache (sharded + singleflight itself) and the global event
// watermark that proves silence across partitions.
//
// Ordering contract: each shard must see its own entries in time order (the
// serial Processor's contract, now per partition). Cross-shard skew is
// tolerated: the coordinator evicts a silent session only when the global
// watermark is a full session gap *plus* the allowed lateness past the
// session's last activity, so a partition lagging by less than the lateness
// budget never has a session split under it.
package stream

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
	"sqlclean/internal/parallel"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/pattern"
	"sqlclean/internal/sketch"
)

// ShardedConfig configures a sharded streaming engine.
type ShardedConfig struct {
	Config
	// Shards is the number of user-hash partitions. Zero selects the next
	// power of two at or above 2×GOMAXPROCS (minimum 8); other values are
	// rounded up to a power of two.
	Shards int
	// Workers bounds the fan-out used by Close and RunSharded (0 selects
	// GOMAXPROCS, 1 is serial).
	Workers int
	// SweepEvery is the number of Adds between cross-shard watermark sweeps
	// (0 selects 256). Smaller values evict silent sessions in quiet shards
	// sooner at the cost of more cross-shard locking.
	SweepEvery int
	// AllowedLateness is the extra silence required before a *cross-shard*
	// sweep closes a session, protecting sessions in partitions whose
	// ingestion lags the global watermark. Zero selects the session gap
	// (i.e. cross-shard eviction after 2× gap of silence); shard-local
	// eviction stays at exactly one gap, like the serial Processor.
	AllowedLateness time.Duration
	// MaxFutureSkew bounds how far one entry may advance the global
	// watermark past its current value. Without a bound, a single corrupted
	// far-future timestamp drags the watermark ahead of every live session,
	// so the next sweep closes them all and subsequent in-order entries are
	// rejected as late. Entries beyond the bound are rejected with
	// ErrFutureSkew (and counted as stream_rejected_future_skew_total when
	// Metrics is set) instead of poisoning the watermark. Zero disables the
	// bound — batch replays of historic logs legitimately jump the event
	// clock by months.
	MaxFutureSkew time.Duration
}

func (c ShardedConfig) withDefaults() ShardedConfig {
	c.Config = c.Config.withDefaults()
	if c.Shards <= 0 {
		c.Shards = 2 * runtime.GOMAXPROCS(0)
		if c.Shards < 8 {
			c.Shards = 8
		}
	}
	c.Shards = nextPow2(c.Shards)
	if c.SweepEvery <= 0 {
		c.SweepEvery = 256
	}
	if c.AllowedLateness <= 0 {
		c.AllowedLateness = c.SessionGap
	}
	return c
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// userHash picks each user's shard. It is FNV-1a — a fixed, documented
// function rather than a per-process random seed — because shard routing is
// part of the durable state contract: a snapshot taken by one process must
// restore per-shard processors onto the same shards in the next process, and
// a journal replay must route every entry exactly as the crashed run did.
func userHash(user string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(user); i++ {
		h ^= uint64(user[i])
		h *= prime64
	}
	return h
}

// ErrFutureSkew marks an entry rejected because its timestamp would advance
// the global watermark beyond ShardedConfig.MaxFutureSkew.
var ErrFutureSkew = errors.New("stream: entry timestamp too far in the future")

type shardSlot struct {
	mu sync.Mutex
	p  *Processor
}

// Sharded is a sharded streaming engine. All methods are safe for concurrent
// use; per-user time ordering must be preserved by the caller (route one
// user's entries through one goroutine, or use RunSharded / a server queue
// per shard).
type Sharded struct {
	cfg    ShardedConfig
	parser *parsedlog.Parser
	shards []*shardSlot
	mask   uint64

	// watermarkNS is the global max event time (unix nanos) across shards.
	watermarkNS atomic.Int64
	// adds triggers the periodic cross-shard sweep.
	adds atomic.Int64
	// openCount/openHigh track global open sessions exactly (each delta is
	// computed under the owning shard's lock).
	openCount atomic.Int64
	openHigh  atomic.Int64

	// gauge is the registry's stream_open_sessions gauge, owned globally by
	// the engine: per-shard processors get a detached gauge so their Set
	// calls cannot clobber each other. Nil without Config.Metrics.
	gauge *obs.Gauge
	// mSkew counts entries rejected by the MaxFutureSkew watermark guard.
	mSkew *obs.Counter
}

// NewSharded returns a sharded streaming engine.
func NewSharded(cfg ShardedConfig) *Sharded {
	cfg = cfg.withDefaults()
	if cfg.Parser == nil {
		cfg.Parser = parsedlog.NewParser()
	}
	s := &Sharded{
		cfg:    cfg,
		parser: cfg.Parser,
		shards: make([]*shardSlot, cfg.Shards),
		mask:   uint64(cfg.Shards - 1),
	}
	s.watermarkNS.Store(math.MinInt64)
	if m := cfg.Metrics; m != nil {
		s.gauge = m.Gauge("stream_open_sessions")
		s.mSkew = m.Counter("stream_rejected_future_skew_total")
	}
	for i := range s.shards {
		p := New(cfg.Config)
		if p.met.open != nil {
			// Detach the shard's open-session gauge: counters and histograms
			// are additive across shards, an instantaneous gauge is not.
			p.met.open = new(obs.Gauge)
		}
		s.shards[i] = &shardSlot{p: p}
	}
	return s
}

// NumShards returns the partition count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardFor returns the partition index owning a user — the routing a server
// uses to keep one user's entries on one ingest queue. It is deterministic
// across processes (see userHash) so restored snapshots and journal replays
// route identically to the run that produced them.
func (s *Sharded) ShardFor(user string) int {
	return int(userHash(user) & s.mask)
}

// OpenSessions returns the number of sessions currently buffered across all
// shards.
func (s *Sharded) OpenSessions() int { return int(s.openCount.Load()) }

// Watermark returns the global max event time across all shards, or the zero
// time before any entry has been accepted. Safe for concurrent use.
func (s *Sharded) Watermark() time.Time {
	ns := s.watermarkNS.Load()
	if ns == math.MinInt64 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// ShardWatermarks returns each partition's own max event time (zero for a
// shard that has seen no entries). A shard whose watermark trails the global
// one is lagging — its ingest queue has backlog, or its users are simply
// quiet. Safe for concurrent use; each shard is read under its own lock.
func (s *Sharded) ShardWatermarks() []time.Time {
	out := make([]time.Time, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = sh.p.Watermark()
		sh.mu.Unlock()
	}
	return out
}

// Add offers one entry, routing it to its user's shard. Cleaned entries of
// any session that closed as a consequence (in this shard, or in others via
// the periodic watermark sweep) are returned, sorted by time.
func (s *Sharded) Add(e logmodel.Entry) (logmodel.Log, error) {
	return s.AddShard(s.ShardFor(e.User), e)
}

// AddShard is Add for a caller that already routed the entry (a per-shard
// ingest queue). i must equal ShardFor(e.User) for dedup and sessionization
// to see the user's whole stream.
func (s *Sharded) AddShard(i int, e logmodel.Entry) (logmodel.Log, error) {
	ns := e.Time.UnixNano()
	if s.cfg.MaxFutureSkew > 0 {
		// Guard the global watermark before raising it: one bogus far-future
		// timestamp must not close every open session in every shard.
		wm := s.watermarkNS.Load()
		if wm != math.MinInt64 && ns > wm+int64(s.cfg.MaxFutureSkew) {
			s.mSkew.Inc()
			return nil, fmt.Errorf("%w: entry at %v is %v past watermark %v (max skew %v)",
				ErrFutureSkew, e.Time, time.Duration(ns-wm), time.Unix(0, wm).UTC(), s.cfg.MaxFutureSkew)
		}
	}
	s.raiseWatermark(ns)
	sh := s.shards[i]
	sh.mu.Lock()
	before := len(sh.p.open)
	out, err := sh.p.Add(e)
	delta := len(sh.p.open) - before
	sh.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s.noteOpenDelta(delta)
	if s.adds.Add(1)%int64(s.cfg.SweepEvery) == 0 {
		if more := s.sweep(); len(more) > 0 {
			out = append(out, more...)
			sortByTime(out)
		}
	}
	return out, nil
}

// AddShardBatch applies a batch of already-routed entries to shard i in
// order, invoking done after each with the entry's index, emitted output and
// error. It is semantically identical to calling AddShard once per entry —
// a faithful per-entry loop, so per-user ordering, the watermark raise, the
// skew guard and the periodic cross-shard sweep all behave exactly as they
// would under per-entry dispatch. Batch callers (the daemon's shard drains)
// get one call site per queue batch without weakening any invariant.
func (s *Sharded) AddShardBatch(i int, entries []logmodel.Entry, done func(k int, out logmodel.Log, err error)) {
	for k := range entries {
		out, err := s.AddShard(i, entries[k])
		done(k, out, err)
	}
}

func (s *Sharded) raiseWatermark(ns int64) {
	for {
		cur := s.watermarkNS.Load()
		if ns <= cur || s.watermarkNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

func (s *Sharded) noteOpenDelta(d int) {
	if d == 0 {
		return
	}
	n := s.openCount.Add(int64(d))
	for {
		h := s.openHigh.Load()
		if n <= h || s.openHigh.CompareAndSwap(h, n) {
			break
		}
	}
	s.gauge.Add(int64(d))
}

// sweep advances every shard to the global watermark minus the allowed
// lateness, closing sessions whose silence only other partitions can prove.
func (s *Sharded) sweep() logmodel.Log {
	wm := s.watermarkNS.Load()
	if wm == math.MinInt64 {
		return nil
	}
	t := time.Unix(0, wm).UTC().Add(-s.cfg.AllowedLateness)
	var out logmodel.Log
	for _, sh := range s.shards {
		sh.mu.Lock()
		before := len(sh.p.open)
		closed := sh.p.Advance(t)
		delta := len(sh.p.open) - before
		sh.mu.Unlock()
		s.noteOpenDelta(delta)
		out = append(out, closed...)
	}
	return out
}

// Close flushes all open sessions across all shards — detection and solving
// fan out on the worker pool — and returns their cleaned entries sorted by
// time. The engine stays readable (Stats, Templates) after Close.
func (s *Sharded) Close() logmodel.Log {
	outs := make([]logmodel.Log, len(s.shards))
	parallel.ShardRun(s.cfg.Workers, len(s.shards), func(i int) {
		sh := s.shards[i]
		sh.mu.Lock()
		before := len(sh.p.open)
		outs[i] = sh.p.Close()
		delta := len(sh.p.open) - before
		sh.mu.Unlock()
		s.noteOpenDelta(delta)
	})
	var n int
	for _, o := range outs {
		n += len(o)
	}
	out := make(logmodel.Log, 0, n)
	for _, o := range outs {
		out = append(out, o...)
	}
	sortByTime(out)
	return out
}

// Stats merges the per-shard counters. OpenSessionsHighWater is the exact
// global peak (tracked by the coordinator), not the sum of per-shard peaks.
func (s *Sharded) Stats() Stats {
	var st Stats
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Merge(sh.p.Stats())
		sh.mu.Unlock()
	}
	st.OpenSessionsHighWater = int(s.openHigh.Load())
	return st
}

// Templates merges the per-shard template statistics, most frequent first.
// Shards partition users, so frequencies and user popularities add exactly.
func (s *Sharded) Templates() []pattern.TemplateStats {
	agg := map[uint64]*pattern.TemplateStats{}
	for _, sh := range s.shards {
		sh.mu.Lock()
		ts := sh.p.Templates()
		sh.mu.Unlock()
		for _, t := range ts {
			if a, ok := agg[t.Fingerprint]; ok {
				a.Frequency += t.Frequency
				a.UserPopularity += t.UserPopularity
			} else {
				c := t
				agg[t.Fingerprint] = &c
			}
		}
	}
	out := make([]pattern.TemplateStats, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Frequency != out[j].Frequency {
			return out[i].Frequency > out[j].Frequency
		}
		return out[i].Skeleton < out[j].Skeleton
	})
	return out
}

// TemplateKinds merges the per-shard verdict maps: a template carries every
// kind any shard attributed to it, sorted.
func (s *Sharded) TemplateKinds() map[uint64][]string {
	union := map[uint64]map[string]struct{}{}
	for _, sh := range s.shards {
		sh.mu.Lock()
		tk := sh.p.TemplateKinds()
		sh.mu.Unlock()
		for fp, ks := range tk {
			set := union[fp]
			if set == nil {
				set = map[string]struct{}{}
				union[fp] = set
			}
			for _, k := range ks {
				set[k] = struct{}{}
			}
		}
	}
	out := make(map[uint64][]string, len(union))
	for fp, set := range union {
		ks := make([]string, 0, len(set))
		for k := range set {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		out[fp] = ks
	}
	return out
}

// Sketches returns the merged cross-shard sketch view as a deep clone (nil
// when the layer is disabled). HLL registers union exactly; SpaceSaving merges
// in shard-index order (deterministic, and sound: merged counts still bracket
// the truth); SWS evidence unions by window. The clone is a consistent-enough
// global read: each shard is locked while copied, like Stats.
func (s *Sharded) Sketches() *sketch.Sketches {
	var merged *sketch.Sketches
	for _, sh := range s.shards {
		sh.mu.Lock()
		sk := sh.p.Sketches()
		if sk != nil {
			if merged == nil {
				merged = sk.Clone()
			} else {
				// Same config on every shard, so the HLL precisions agree and
				// Merge cannot fail.
				_ = merged.Merge(sk)
			}
		}
		sh.mu.Unlock()
	}
	return merged
}

// ClassifySWS drains the merged windowed SWS evidence into a classification
// using the engine-wide accepted-SELECT count — the sharded counterpart of
// Processor.ClassifySWS. Nil when sketches are disabled.
func (s *Sharded) ClassifySWS(opt pattern.SWSOptions) map[uint64]bool {
	sk := s.Sketches()
	if sk == nil {
		return nil
	}
	return sk.SWS.Classify(s.Stats().Selects, opt)
}

// RunSharded streams a whole in-memory log through a fresh sharded engine,
// processing partitions concurrently on the worker pool, and returns the
// cleaned log (sorted by time) plus the merged stats. Cross-shard watermark
// sweeps are skipped — each partition's own watermark already proves every
// eviction, since a partition sees its entries in order — so the output
// multiset is identical to the serial stream.Run and to the batch pipeline.
func RunSharded(l logmodel.Log, cfg ShardedConfig) (logmodel.Log, Stats, error) {
	s := NewSharded(cfg)
	n := len(s.shards)
	buckets := make([][]int32, n)
	for i, e := range l {
		b := s.ShardFor(e.User)
		buckets[b] = append(buckets[b], int32(i))
	}
	outs := make([]logmodel.Log, n)
	errs := make([]error, n)
	parallel.ShardRun(cfg.Workers, n, func(i int) {
		sh := s.shards[i]
		for _, idx := range buckets[i] {
			sh.mu.Lock()
			before := len(sh.p.open)
			emitted, err := sh.p.Add(l[idx])
			delta := len(sh.p.open) - before
			sh.mu.Unlock()
			s.noteOpenDelta(delta)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = append(outs[i], emitted...)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, s.Stats(), err
		}
	}
	final := s.Close()
	total := len(final)
	for _, o := range outs {
		total += len(o)
	}
	out := make(logmodel.Log, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	out = append(out, final...)
	sortByTime(out)
	return out, s.Stats(), nil
}
