// Package stream processes a query log incrementally with bounded memory.
// The batch pipeline (internal/core) holds the whole log; the paper's real
// subject — a 42-million-entry SkyServer log — wants a streaming pass. The
// key observation: every detection window (Definition 8) is confined to one
// user session, so once a user's stream has been silent for longer than the
// session gap, that session can be detected, solved and emitted without
// ever seeing the rest of the log. Only the open sessions stay in memory.
//
// Input must be time-ordered. Output is emitted session by session, in
// session-close order. Template statistics accumulate across the whole
// stream. SWS classification needs global statistics and is therefore
// reported at Close time only.
package stream

import (
	"fmt"
	"sort"
	"time"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/pattern"
	"sqlclean/internal/rewrite"
	"sqlclean/internal/schema"
	"sqlclean/internal/session"
	"sqlclean/internal/sketch"
	"sqlclean/internal/sqlast"
)

// Config mirrors the batch pipeline's knobs that make sense per session.
type Config struct {
	// Catalog supplies key metadata; nil selects schema.SkyServer().
	Catalog *schema.Catalog
	// DuplicateThreshold is the dedup window; zero selects 1 s.
	DuplicateThreshold time.Duration
	// SessionGap closes a user's session after this much silence; zero
	// selects 5 minutes.
	SessionGap time.Duration
	// MinRun is the minimum antipattern run length (default 2).
	MinRun int
	// DisableKeyCheck drops Definition 11's key-attribute axiom.
	DisableKeyCheck bool
	// ExtraRules and ExtraSolvers extend the registry (§5.4).
	ExtraRules   []antipattern.Rule
	ExtraSolvers []rewrite.Solver
	// Parser optionally supplies a shared statement-parse cache. Nil gives
	// the processor a fresh one. Sharing a parser — across the shards of a
	// Sharded engine, or between a daemon's streaming path and a batch
	// pipeline run — means identical statement texts are parsed once
	// process-wide and hit/miss metrics aggregate in one place.
	Parser *parsedlog.Parser
	// Metrics is an optional observability registry. When non-nil the
	// processor keeps live gauges and counters in it: stream_open_sessions
	// (whose Max is the high-water mark — the proof of the bounded-memory
	// claim), stream_entries_in_total, stream_selects_total,
	// stream_duplicates_total, stream_entries_out_total,
	// stream_sessions_emitted_total, and a session-length histogram. Nil
	// keeps the zero-overhead path.
	Metrics *obs.Registry
	// Sketches sizes the approximate-analytics layer (distinct-identity HLL,
	// SpaceSaving top-k, windowed SWS evidence). The zero value enables it
	// with package defaults; set Sketches.Disabled to opt out.
	Sketches sketch.Config
}

func (c Config) withDefaults() Config {
	if c.Catalog == nil {
		c.Catalog = schema.SkyServer()
	}
	if c.DuplicateThreshold == 0 {
		c.DuplicateThreshold = time.Second
	}
	if c.SessionGap == 0 {
		c.SessionGap = 5 * time.Minute
	}
	if c.MinRun < 2 {
		c.MinRun = 2
	}
	return c
}

// Stats accumulates over the whole stream. The JSON names are the export
// contract shared by the CLI's -json streaming export and the daemon's
// GET /report payload.
type Stats struct {
	In         int `json:"in"`         // entries offered
	Selects    int `json:"selects"`    // parsed SELECTs kept (non-duplicate)
	Duplicates int `json:"duplicates"` // dropped as duplicates
	Out        int `json:"out"`        // entries emitted
	// Antipatterns aggregates instance counts per kind.
	Antipatterns map[antipattern.Kind]int `json:"antipatterns,omitempty"`
	// SolvedQueries counts statements consumed by solved instances.
	SolvedQueries int `json:"solved_queries"`
	// SessionsEmitted counts sessions closed and emitted.
	SessionsEmitted int `json:"sessions_emitted"`
	// OpenSessionsHighWater is the peak number of simultaneously open
	// sessions — the stream's actual memory bound. Merged across shards it
	// is the sum of per-shard peaks, an upper bound on the true global peak.
	OpenSessionsHighWater int `json:"open_sessions_high_water"`
}

// Merge folds another stream's counters into s (all fields are additive).
func (s *Stats) Merge(o Stats) {
	s.In += o.In
	s.Selects += o.Selects
	s.Duplicates += o.Duplicates
	s.Out += o.Out
	s.SolvedQueries += o.SolvedQueries
	s.SessionsEmitted += o.SessionsEmitted
	s.OpenSessionsHighWater += o.OpenSessionsHighWater
	if len(o.Antipatterns) > 0 && s.Antipatterns == nil {
		s.Antipatterns = map[antipattern.Kind]int{}
	}
	for k, n := range o.Antipatterns {
		s.Antipatterns[k] += n
	}
}

// Processor is the streaming pipeline. Not safe for concurrent use.
type Processor struct {
	cfg     Config
	parser  *parsedlog.Parser
	reg     *antipattern.Registry
	solvers []rewrite.Solver

	// open holds each user's current session.
	open map[string]*openSession
	// lastSeen tracks (user, statement) → last time, for dedup.
	lastSeen map[dupKey]time.Time
	// watermark is the max event time seen.
	watermark time.Time

	// templateCounts accumulate global per-template statistics.
	templateAgg map[uint64]*templateAgg

	// sk holds the approximate-analytics sketches; nil when disabled.
	sk *sketch.Sketches

	stats Stats
	met   streamMetrics
}

// streamMetrics are the optional registry hooks; all fields are nil (no-op)
// without Config.Metrics.
type streamMetrics struct {
	in         *obs.Counter
	selects    *obs.Counter
	dups       *obs.Counter
	out        *obs.Counter
	emitted    *obs.Counter
	open       *obs.Gauge
	sessionLen *obs.Histogram
	solvedAway *obs.Counter
	instances  *obs.Counter
	topkEvict  *obs.Counter
	swsFlush   *obs.Counter
}

type dupKey struct{ user, stmt string }

type openSession struct {
	user    string
	label   string
	last    time.Time
	entries parsedlog.Log
}

type templateAgg struct {
	skeleton string
	count    int
	users    map[string]struct{}
	// kinds are the antipattern kinds ever attributed to this template by a
	// detected instance (nil until the first attribution). This is the
	// long-horizon verdict the retention store stamps into compacted blocks.
	kinds map[antipattern.Kind]struct{}
}

// New returns a streaming processor.
func New(cfg Config) *Processor {
	cfg = cfg.withDefaults()
	reg := antipattern.DefaultRegistry(cfg.Catalog, antipattern.Options{
		MinRun:           cfg.MinRun,
		RequireKeyColumn: !cfg.DisableKeyCheck,
	})
	for _, r := range cfg.ExtraRules {
		reg.Register(r)
	}
	solvers := rewrite.DefaultSolvers(cfg.Catalog)
	solvers = append(solvers, cfg.ExtraSolvers...)
	parser := cfg.Parser
	if parser == nil {
		parser = parsedlog.NewParser()
	}
	p := &Processor{
		cfg:         cfg,
		parser:      parser,
		reg:         reg,
		solvers:     solvers,
		open:        map[string]*openSession{},
		lastSeen:    map[dupKey]time.Time{},
		templateAgg: map[uint64]*templateAgg{},
		sk:          sketch.New(cfg.Sketches),
	}
	if m := cfg.Metrics; m != nil {
		p.parser.Instrument(m)
		p.met = streamMetrics{
			in:         m.Counter("stream_entries_in_total"),
			selects:    m.Counter("stream_selects_total"),
			dups:       m.Counter("stream_duplicates_total"),
			out:        m.Counter("stream_entries_out_total"),
			emitted:    m.Counter("stream_sessions_emitted_total"),
			open:       m.Gauge("stream_open_sessions"),
			sessionLen: m.Histogram("stream_session_entries", obs.SizeBuckets),
			solvedAway: m.Counter("stream_solved_queries_total"),
			instances:  m.Counter("stream_instances_total"),
			topkEvict:  m.Counter("sketch_topk_evictions_total"),
			swsFlush:   m.Counter("sketch_sws_window_flushes_total"),
		}
	}
	return p
}

// Stats returns the accumulated counters.
func (p *Processor) Stats() Stats { return p.stats }

// OpenSessions returns the number of sessions currently buffered — the
// memory bound of the stream.
func (p *Processor) OpenSessions() int { return len(p.open) }

// Add offers one entry (time-ordered input) and returns any cleaned entries
// whose sessions closed as a consequence. It returns an error when the
// input goes backwards in time by more than the session gap (the stream's
// ordering contract).
func (p *Processor) Add(e logmodel.Entry) (logmodel.Log, error) {
	p.stats.In++
	p.met.in.Inc()
	if e.Time.Before(p.watermark.Add(-p.cfg.SessionGap)) {
		return nil, fmt.Errorf("stream: entry at %v arrived after watermark %v (input must be time-ordered)", e.Time, p.watermark)
	}
	if e.Time.After(p.watermark) {
		p.watermark = e.Time
	}
	if p.sk != nil {
		// Distinct identities count every in-order entry's user, SELECT or
		// not — the sketch answers "how many identities touched the service",
		// not "how many queried templates".
		p.sk.HLL.AddString(e.User)
	}

	var out logmodel.Log

	pe := p.parser.ParseEntry(e)
	if pe.Class == sqlast.ClassSelect {
		// Dedup against the previous occurrence (sliding window).
		k := dupKey{user: e.User, stmt: e.Statement}
		prev, seen := p.lastSeen[k]
		p.lastSeen[k] = e.Time
		if seen && e.Time.Sub(prev) <= p.cfg.DuplicateThreshold {
			p.stats.Duplicates++
			p.met.dups.Inc()
		} else {
			p.stats.Selects++
			p.met.selects.Inc()
			p.recordTemplate(pe)
			os := p.open[e.User]
			if os != nil {
				gap := e.Time.Sub(os.last) > p.cfg.SessionGap
				labelChange := e.Session != "" && os.label != "" && e.Session != os.label
				if gap || labelChange {
					out = append(out, p.closeSession(os)...)
					delete(p.open, e.User)
					os = nil
				}
			}
			if os == nil {
				os = &openSession{user: e.User, label: e.Session}
				p.open[e.User] = os
				if n := len(p.open); n > p.stats.OpenSessionsHighWater {
					p.stats.OpenSessionsHighWater = n
				}
				p.met.open.Set(int64(len(p.open)))
			}
			os.entries = append(os.entries, pe)
			os.last = e.Time
			if e.Session != "" {
				os.label = e.Session
			}
		}
	}

	// Watermark eviction: every user silent for longer than the gap can be
	// closed — no future in-order entry can extend those sessions.
	out = append(out, p.evict()...)
	p.met.open.Set(int64(len(p.open)))
	sortByTime(out)
	return out, nil
}

// Watermark returns the max event time this stream has seen (zero before the
// first entry). Not safe for concurrent use with Add — callers that share a
// Processor across goroutines must hold the same lock they use for Add.
func (p *Processor) Watermark() time.Time { return p.watermark }

// evict closes every open session that the watermark proves silent and
// returns their cleaned entries (unsorted).
func (p *Processor) evict() logmodel.Log {
	return p.evictBefore(p.watermark)
}

func (p *Processor) evictBefore(t time.Time) logmodel.Log {
	var out logmodel.Log
	for user, os := range p.open {
		if t.Sub(os.last) > p.cfg.SessionGap {
			out = append(out, p.closeSession(os)...)
			delete(p.open, user)
		}
	}
	return out
}

// Advance returns the cleaned entries of any session t proves silent. It is
// how a sharded engine merges window boundaries: one shard only observes its
// own partition's event times, so the coordinator periodically advances every
// shard to the global maximum, closing sessions whose silence only the other
// partitions can prove. Advance deliberately does NOT raise the stream's
// ordering watermark: a partition lagging behind the global clock (an ingest
// queue with backlog) must still be allowed to add its queued entries, which
// are in order for *its* stream even when other partitions are far ahead.
func (p *Processor) Advance(t time.Time) logmodel.Log {
	out := p.evictBefore(t)
	p.met.open.Set(int64(len(p.open)))
	sortByTime(out)
	return out
}

// Close flushes all open sessions and returns their cleaned entries.
func (p *Processor) Close() logmodel.Log {
	var out logmodel.Log
	users := make([]string, 0, len(p.open))
	for u := range p.open {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		out = append(out, p.closeSession(p.open[u])...)
		delete(p.open, u)
	}
	p.met.open.Set(0)
	sortByTime(out)
	return out
}

func sortByTime(l logmodel.Log) {
	sort.SliceStable(l, func(i, j int) bool {
		if !l[i].Time.Equal(l[j].Time) {
			return l[i].Time.Before(l[j].Time)
		}
		return l[i].Seq < l[j].Seq
	})
}

// closeSession runs detection and solving over one finished session.
func (p *Processor) closeSession(os *openSession) logmodel.Log {
	if p.sk != nil {
		// Every accepted SELECT lives in exactly one session and every close
		// path funnels through here, so the SWS accumulator sees each entry
		// exactly once. Evidence is stamped with the session's close time so
		// the whole session lands in one event-time window.
		ts := os.last.UnixNano()
		for _, pe := range os.entries {
			if n := p.sk.SWS.Observe(ts, pe.Info.Fingerprint, pe.User, pattern.HashWhere(pe.Info.WC)); n > 0 {
				p.met.swsFlush.Add(int64(n))
			}
		}
	}
	p.stats.SessionsEmitted++
	p.met.emitted.Inc()
	p.met.sessionLen.Observe(int64(len(os.entries)))
	idxs := make([]int, len(os.entries))
	for i := range idxs {
		idxs[i] = i
	}
	sess := session.Session{User: os.user, Indices: idxs}
	instances := p.reg.Detect(os.entries, []session.Session{sess})
	if p.stats.Antipatterns == nil {
		p.stats.Antipatterns = map[antipattern.Kind]int{}
	}
	for _, in := range instances {
		p.stats.Antipatterns[in.Kind]++
		// Attribute the verdict to every member query's template.
		for _, idx := range in.Indices {
			if idx < 0 || idx >= len(os.entries) || os.entries[idx].Info == nil {
				continue
			}
			if a := p.templateAgg[os.entries[idx].Info.Fingerprint]; a != nil {
				if a.kinds == nil {
					a.kinds = map[antipattern.Kind]struct{}{}
				}
				a.kinds[in.Kind] = struct{}{}
			}
		}
	}
	p.met.instances.Add(int64(len(instances)))
	res := rewrite.Apply(os.entries, instances, p.solvers)
	for _, s := range res.Stats {
		p.stats.SolvedQueries += s.QueriesBefore
		p.met.solvedAway.Add(int64(s.QueriesBefore))
	}
	p.stats.Out += len(res.Clean)
	p.met.out.Add(int64(len(res.Clean)))
	return res.Clean
}

func (p *Processor) recordTemplate(pe parsedlog.Entry) {
	fp := pe.Info.Fingerprint
	a, ok := p.templateAgg[fp]
	if !ok {
		a = &templateAgg{skeleton: pe.Info.SkeletonText(), users: map[string]struct{}{}}
		p.templateAgg[fp] = a
	}
	a.count++
	a.users[pe.User] = struct{}{}
	if p.sk != nil {
		// Same admission rule as templateAgg: accepted, non-duplicate
		// SELECTs. The SpaceSaving counts therefore approximate exactly the
		// Frequency column of Templates().
		if p.sk.Top.Observe(fp, a.skeleton) {
			p.met.topkEvict.Inc()
		}
	}
}

// Templates returns the accumulated per-template statistics, most frequent
// first. (DistinctWhere is not tracked streaming; SWS classification over
// these stats is the caller's choice of pattern.SWSOptions.)
func (p *Processor) Templates() []pattern.TemplateStats {
	out := make([]pattern.TemplateStats, 0, len(p.templateAgg))
	for fp, a := range p.templateAgg {
		out = append(out, pattern.TemplateStats{
			Fingerprint:    fp,
			Skeleton:       a.skeleton,
			Frequency:      a.count,
			UserPopularity: len(a.users),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Frequency != out[j].Frequency {
			return out[i].Frequency > out[j].Frequency
		}
		return out[i].Skeleton < out[j].Skeleton
	})
	return out
}

// TemplateKinds returns, for every template with at least one detected
// antipattern instance, the sorted kind names attributed to it. Templates
// never seen inside an instance are absent.
func (p *Processor) TemplateKinds() map[uint64][]string {
	out := map[uint64][]string{}
	for fp, a := range p.templateAgg {
		if len(a.kinds) == 0 {
			continue
		}
		ks := make([]string, 0, len(a.kinds))
		for k := range a.kinds {
			ks = append(ks, string(k))
		}
		sort.Strings(ks)
		out[fp] = ks
	}
	return out
}

// Sketches exposes the processor's approximate-analytics state (nil when the
// layer is disabled). Callers share the Add caller's synchronization.
func (p *Processor) Sketches() *sketch.Sketches { return p.sk }

// ClassifySWS drains the windowed SWS evidence into a classification, using
// the stream's accepted-SELECT count as the batch pipeline's total. After
// Close it matches internal/core's batch SWS decision bit for bit (the
// evidence is exact: frequency and WHERE hashes are uncapped, and user sets
// are exact below the configured cap). Nil when sketches are disabled.
func (p *Processor) ClassifySWS(opt pattern.SWSOptions) map[uint64]bool {
	if p.sk == nil {
		return nil
	}
	return p.sk.SWS.Classify(p.stats.Selects, opt)
}

// Run streams a whole log through a fresh processor and returns the cleaned
// log plus the final stats — the convenience one-shot API.
func Run(l logmodel.Log, cfg Config) (logmodel.Log, Stats, error) {
	p := New(cfg)
	var out logmodel.Log
	for _, e := range l {
		emitted, err := p.Add(e)
		if err != nil {
			return nil, p.Stats(), err
		}
		out = append(out, emitted...)
	}
	out = append(out, p.Close()...)
	return out, p.Stats(), nil
}
