package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/sqlparser"
	"sqlclean/internal/workload"

	"sqlclean/internal/logmodel"
)

func mkLog(stmts ...string) logmodel.Log {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	var l logmodel.Log
	for i, s := range stmts {
		l = append(l, logmodel.Entry{Seq: int64(i), Time: base.Add(time.Duration(i) * time.Second), User: "10.0.0.1", Rows: 1, Statement: s})
	}
	return l
}

func TestRunPaperTable1Example(t *testing.T) {
	// The running example of the paper (Table 1 → Tables 2 and 3).
	l := mkLog(
		"SELECT E.Id FROM Employees E WHERE E.department = 'sales'",
		"SELECT E.name, E.surname FROM Employees E WHERE E.id = 12",
		"SELECT E.name, E.surname FROM Employees E WHERE E.id = 15",
		"SELECT E.name, E.surname FROM Employees E WHERE E.id = 16",
	)
	res, err := Run(l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[antipattern.Kind]int{}
	for _, in := range res.Instances {
		kinds[in.Kind]++
	}
	if kinds[antipattern.CTH] != 1 || kinds[antipattern.DWStifle] != 1 {
		t.Fatalf("instances: %+v", res.Instances)
	}
	if len(res.Clean) != 2 {
		t.Fatalf("clean: %+v", res.Clean)
	}
	if !strings.Contains(res.Clean[1].Statement, "IN (12, 15, 16)") {
		t.Errorf("clean statement: %q", res.Clean[1].Statement)
	}
	// Removal drops all four (all are CTH members).
	if len(res.Removal) != 0 {
		t.Errorf("removal: %+v", res.Removal)
	}
}

func TestRunFiltersNonSelectAndErrors(t *testing.T) {
	l := mkLog(
		"SELECT a FROM t",
		"INSERT INTO t VALUES (1)",
		"SELECT FROM t",
		"CREATE TABLE u (a int)",
	)
	res, err := Run(l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.CountSelect != 1 || res.Report.CountDML != 1 || res.Report.CountDDL != 1 || res.Report.CountErrors != 1 {
		t.Errorf("report: %+v", res.Report)
	}
	if len(res.PreClean) != 1 {
		t.Errorf("preclean: %+v", res.PreClean)
	}
}

func TestRunDeduplicates(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	l := logmodel.Log{
		{Seq: 0, Time: base, User: "u", Statement: "SELECT a FROM t"},
		{Seq: 1, Time: base.Add(300 * time.Millisecond), User: "u", Statement: "SELECT a FROM t"},
		{Seq: 2, Time: base.Add(10 * time.Second), User: "u", Statement: "SELECT a FROM t"},
	}
	res, err := Run(l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dedup.Removed != 1 || len(res.PreClean) != 2 {
		t.Errorf("dedup: %+v preclean=%d", res.Dedup, len(res.PreClean))
	}
	res, err = Run(l, Config{NoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PreClean) != 3 {
		t.Errorf("NoDedup: %d", len(res.PreClean))
	}
}

func TestRunSortsUnorderedInput(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	l := logmodel.Log{
		{Seq: 1, Time: base.Add(time.Second), User: "u", Statement: "SELECT E.name FROM Employees E WHERE E.id = 12"},
		{Seq: 0, Time: base, User: "u", Statement: "SELECT E.name FROM Employees E WHERE E.id = 11"},
	}
	res, err := Run(l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// After sorting they are consecutive and form a DW-Stifle.
	found := false
	for _, in := range res.Instances {
		if in.Kind == antipattern.DWStifle {
			found = true
		}
	}
	if !found {
		t.Error("unordered input broke run detection")
	}
	// The caller's slice must not be reordered.
	if l[0].Seq != 1 {
		t.Error("input mutated")
	}
}

func TestRunDisableSolve(t *testing.T) {
	l := mkLog(
		"SELECT E.name FROM Employees E WHERE E.id = 12",
		"SELECT E.name FROM Employees E WHERE E.id = 15",
	)
	res, err := Run(l, Config{DisableSolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) == 0 {
		t.Fatal("detection must still run")
	}
	if len(res.Clean) != len(res.PreClean) {
		t.Error("clean log must equal pre-clean log")
	}
	if len(res.Report.SolveStats) != 0 {
		t.Error("no solve stats expected")
	}
}

func TestRunSessionGapBreaksRuns(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	l := logmodel.Log{
		{Seq: 0, Time: base, User: "u", Statement: "SELECT name FROM Employees WHERE id = 1"},
		{Seq: 1, Time: base.Add(2 * time.Hour), User: "u", Statement: "SELECT name FROM Employees WHERE id = 2"},
	}
	res, err := Run(l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 0 {
		t.Errorf("2h apart must not form an instance: %+v", res.Instances)
	}
	// A negative SessionGap disables splitting entirely.
	res, err = Run(l, Config{SessionGap: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) == 0 {
		t.Error("gap splitting not disabled")
	}
}

func TestReportConsistency(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.3))
	res, err := Run(log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.SizeOriginal != len(res.Original) {
		t.Errorf("SizeOriginal %d != %d", r.SizeOriginal, len(res.Original))
	}
	if r.SizeAfterDedup != len(res.PreClean) {
		t.Errorf("SizeAfterDedup %d != %d", r.SizeAfterDedup, len(res.PreClean))
	}
	if r.FinalSize != len(res.Clean) {
		t.Errorf("FinalSize %d != %d", r.FinalSize, len(res.Clean))
	}
	if r.CountSelect+r.CountDML+r.CountDDL+r.CountExec+r.CountErrors != r.SizeOriginal {
		t.Error("class counts do not add up")
	}
	if r.CountTemplates != len(res.Templates) {
		t.Error("template count mismatch")
	}
	if len(res.Templates) > 0 && r.MaxTemplateFreq != res.Templates[0].Frequency {
		t.Error("max frequency mismatch")
	}
	// The clean log is never bigger than the pre-clean log.
	if len(res.Clean) > len(res.PreClean) {
		t.Error("cleaning grew the log")
	}
	// The removal log is never bigger than the clean log.
	if len(res.Removal) > len(res.Clean) {
		t.Error("removal bigger than clean")
	}
	// Template frequencies sum to the pre-clean size.
	sum := 0
	for _, tp := range res.Templates {
		sum += tp.Frequency
	}
	if sum != len(res.PreClean) {
		t.Errorf("frequencies sum to %d, log has %d", sum, len(res.PreClean))
	}
}

func TestCleanLogReparses(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.2))
	res, err := Run(log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Clean {
		if _, err := sqlparser.ParseSelect(e.Statement); err != nil {
			t.Fatalf("clean statement does not parse: %q: %v", e.Statement, err)
		}
	}
}

func TestSecondCleaningPassIsNearFixpoint(t *testing.T) {
	// §5.5: after one cleaning pass, the residue of solvable antipatterns
	// is negligible (the paper measured 0.09 %).
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.3))
	res1, err := Run(log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(res1.Clean, Config{NoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	solvable := 0
	for _, in := range res2.Instances {
		if in.Solvable {
			solvable += len(in.Indices)
		}
	}
	share := float64(solvable) / float64(len(res1.Clean))
	if share > 0.01 {
		t.Errorf("second-pass solvable share too high: %.4f", share)
	}
}

func TestAntipatternTemplatesMarking(t *testing.T) {
	l := mkLog(
		"SELECT name FROM Employees WHERE id = 1",
		"SELECT name FROM Employees WHERE id = 2",
		"SELECT count(*) FROM photoprimary",
	)
	res, err := Run(l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	anti := res.AntipatternTemplates()
	marked := 0
	for _, tp := range res.Templates {
		if anti[tp.Fingerprint] {
			marked++
			if !res.IsAntipatternTemplate(tp.Fingerprint) {
				t.Error("IsAntipatternTemplate disagrees with AntipatternTemplates")
			}
		}
	}
	if marked != 1 {
		t.Errorf("marked templates: %d", marked)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Catalog == nil || c.DuplicateThreshold != time.Second ||
		c.SessionGap != 5*time.Minute || c.MinRun != 2 || c.MaxSequenceLen != 3 {
		t.Errorf("defaults: %+v", c)
	}
}

func TestRunRejectsInvalidCatalog(t *testing.T) {
	cat := schemaWithBrokenTable()
	if _, err := Run(mkLog("SELECT 1"), Config{Catalog: cat}); err == nil {
		t.Error("invalid catalog accepted")
	}
}

func TestReportString(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.1))
	res, err := Run(log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Report.String()
	for _, want := range []string{"Size of original query log", "Count of Select queries", "Final log size"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestNoUserInfoStillFindsPatterns(t *testing.T) {
	// §6.8: with timestamps only, frequencies stay close.
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.3))
	resFull, err := Run(log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	resAnon, err := Run(log.StripUsers(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resAnon.Templates) == 0 {
		t.Fatal("no templates without user info")
	}
	// Top template frequency must be identical: templates do not depend on
	// users at all.
	if resFull.Templates[0].Frequency != resAnon.Templates[0].Frequency {
		t.Errorf("top frequency changed: %d vs %d",
			resFull.Templates[0].Frequency, resAnon.Templates[0].Frequency)
	}
	// Clean-log sizes differ by only a few percent.
	diff := float64(len(resFull.Clean)-len(resAnon.Clean)) / float64(len(resFull.Clean))
	if diff < -0.1 || diff > 0.1 {
		t.Errorf("clean size gap: %.3f", diff)
	}
}

func TestSolveToFixpoint(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.3))
	res, err := Run(log, Config{SolveToFixpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.SolvePasses < 1 {
		t.Fatalf("passes: %d", res.Report.SolvePasses)
	}
	// After the fixpoint, a fresh run over the clean log finds no solvable
	// Stifle at all.
	res2, err := Run(res.Clean, Config{NoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res2.Instances {
		if in.Solvable && in.Kind != antipattern.SNC {
			t.Fatalf("solvable %s survived the fixpoint: %v", in.Kind, in.Identity)
		}
	}
	// Fixpoint output is never bigger than single-pass output.
	res1, err := Run(log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clean) > len(res1.Clean) {
		t.Errorf("fixpoint %d > single pass %d", len(res.Clean), len(res1.Clean))
	}
}

func TestSWSModeExclude(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.3))
	keep, err := Run(log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	excl, err := Run(log, Config{SWSMode: SWSExclude})
	if err != nil {
		t.Fatal(err)
	}
	if len(excl.Clean) >= len(keep.Clean) {
		t.Fatalf("exclude did not shrink: %d vs %d", len(excl.Clean), len(keep.Clean))
	}
	// No SWS template statement remains.
	parsed, _ := parsedlog.Parse(excl.Clean)
	for _, pe := range parsed {
		if pe.Info != nil && excl.SWS[pe.Info.Fingerprint] {
			t.Fatalf("SWS query survived exclusion: %q", pe.Statement)
		}
	}
}

func TestSWSModeUnion(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.3))
	keep, err := Run(log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Run(log, Config{SWSMode: SWSUnion})
	if err != nil {
		t.Fatal(err)
	}
	if len(uni.Clean) >= len(keep.Clean) {
		t.Fatalf("union did not shrink: %d vs %d", len(uni.Clean), len(keep.Clean))
	}
	// The htmid sliding windows collapse to one hull query each.
	hulls := 0
	for _, e := range uni.Clean {
		if strings.Contains(e.Statement, "htmid") && strings.Contains(e.Statement, ">=") {
			hulls++
			if _, err := sqlparser.ParseSelect(e.Statement); err != nil {
				t.Fatalf("hull query does not parse: %q: %v", e.Statement, err)
			}
		}
	}
	if hulls == 0 || hulls > 4 {
		t.Errorf("hull queries: %d", hulls)
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.2))
	res, err := Run(log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res, 10); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Report.SizeOriginal != res.Report.SizeOriginal ||
		doc.Report.FinalSize != res.Report.FinalSize {
		t.Errorf("report: %+v", doc.Report)
	}
	if len(doc.Templates) != len(res.Templates) {
		t.Errorf("templates: %d vs %d", len(doc.Templates), len(res.Templates))
	}
	if len(doc.Instances) != 10 {
		t.Errorf("instance cap: %d", len(doc.Instances))
	}
	for _, in := range doc.Instances {
		if len(in.Statements) == 0 || in.Kind == "" {
			t.Errorf("instance: %+v", in)
		}
	}
	// Antipattern/SWS flags round-trip.
	swsSeen := false
	for _, tp := range doc.Templates {
		if tp.SWS {
			swsSeen = true
		}
	}
	if !swsSeen {
		t.Error("no SWS template flagged in the export")
	}
	// Unbounded export includes every instance.
	var buf2 bytes.Buffer
	if err := WriteJSON(&buf2, res, 0); err != nil {
		t.Fatal(err)
	}
	doc2, err := ReadJSON(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc2.Instances) != len(res.Instances) {
		t.Errorf("instances: %d vs %d", len(doc2.Instances), len(res.Instances))
	}
}
