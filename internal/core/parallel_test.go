package core

import (
	"reflect"
	"testing"

	"sqlclean/internal/obs"
	"sqlclean/internal/workload"
)

// TestRunParallelDeterminism is the acceptance test for the parallel
// pipeline: a run with Workers: 8 must be byte-identical to the serial run
// (Workers: 1) — same report, same clean and removal logs, same instances in
// the same order, same templates — across several configurations that
// exercise the fixpoint and SWS re-parse paths too.
func TestRunParallelDeterminism(t *testing.T) {
	log, _ := workload.Generate(workload.DefaultConfig().Scale(0.2))
	cases := []struct {
		name string
		cfg  Config
	}{
		{"default", Config{}},
		{"fixpoint", Config{SolveToFixpoint: true}},
		{"sws-exclude", Config{SWSMode: SWSExclude}},
		{"sws-union", Config{SWSMode: SWSUnion}},
		{"no-dedup", Config{NoDedup: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serialCfg := tc.cfg
			serialCfg.Workers = 1
			parallelCfg := tc.cfg
			parallelCfg.Workers = 8

			serial, err := Run(log, serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			par, err := Run(log, parallelCfg)
			if err != nil {
				t.Fatal(err)
			}

			// Wall-clock fields are nondeterministic by nature; everything
			// else in the report must be byte-identical.
			stripTiming := func(r Report) Report {
				r.Duration = 0
				r.Stages = obs.StageTiming{}
				return r
			}
			if !reflect.DeepEqual(stripTiming(serial.Report), stripTiming(par.Report)) {
				t.Errorf("Report differs:\nserial:   %+v\nparallel: %+v", serial.Report, par.Report)
			}
			if !reflect.DeepEqual(serial.Clean, par.Clean) {
				t.Errorf("Clean log differs (serial %d entries, parallel %d)", len(serial.Clean), len(par.Clean))
			}
			if !reflect.DeepEqual(serial.Removal, par.Removal) {
				t.Errorf("Removal log differs")
			}
			if !reflect.DeepEqual(serial.Instances, par.Instances) {
				t.Errorf("Instances differ (serial %d, parallel %d)", len(serial.Instances), len(par.Instances))
			}
			if !reflect.DeepEqual(serial.Templates, par.Templates) {
				t.Errorf("Templates differ")
			}
			if !reflect.DeepEqual(serial.Sequences, par.Sequences) {
				t.Errorf("Sequences differ")
			}
			if !reflect.DeepEqual(serial.SWS, par.SWS) {
				t.Errorf("SWS classification differs")
			}
			if !reflect.DeepEqual(serial.PreClean, par.PreClean) {
				t.Errorf("PreClean differs")
			}
		})
	}
}

// TestRunSingleParse pins the double-parse fix: the pre-clean log's parse
// results must be the stage-1 results carried through dedup by index (shared
// *skeleton.Info pointers), not a fresh re-parse.
func TestRunSingleParse(t *testing.T) {
	l := mkLog(
		"SELECT E.name FROM Employees E WHERE E.id = 12",
		"SELECT E.name FROM Employees E WHERE E.id = 12",
		"SELECT E.name FROM Employees E WHERE E.id = 15",
	)
	res, err := Run(l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parsed) != len(res.PreClean) {
		t.Fatalf("parsed/pre-clean length mismatch: %d vs %d", len(res.Parsed), len(res.PreClean))
	}
	for i := range res.Parsed {
		if res.Parsed[i].Statement != res.PreClean[i].Statement {
			t.Fatalf("entry %d: parsed statement %q does not match pre-clean %q",
				i, res.Parsed[i].Statement, res.PreClean[i].Statement)
		}
	}
	// Identical statement texts share one Info even across the dedup cut.
	byStmt := map[string]int{}
	for i, pe := range res.Parsed {
		if pe.Info == nil {
			continue
		}
		if j, ok := byStmt[pe.Statement]; ok && res.Parsed[j].Info != pe.Info {
			t.Fatalf("statement %q parsed more than once", pe.Statement)
		}
		byStmt[pe.Statement] = i
	}
}
