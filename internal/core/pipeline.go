// Package core implements the paper's processing framework (Fig. 1): the
// original query log flows through duplicate deletion, statement parsing,
// template/pattern extraction, antipattern detection and antipattern
// solving, producing a clean query log plus statistics. This is the primary
// contribution of the paper; every other internal package is a substrate it
// composes.
package core

import (
	"fmt"
	"sync"
	"time"

	"sqlclean/internal/antipattern"
	"sqlclean/internal/dedup"
	"sqlclean/internal/logmodel"
	"sqlclean/internal/obs"
	"sqlclean/internal/overlap"
	"sqlclean/internal/parallel"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/pattern"
	"sqlclean/internal/rewrite"
	"sqlclean/internal/schema"
	"sqlclean/internal/session"
	"sqlclean/internal/skeleton"
)

// Config configures one pipeline run. The zero value is usable: it applies
// the paper's defaults (1 s duplicate threshold, 5 min session gap, runs of
// ≥ 2 queries, key-column check on) with the SkyServer demo catalog.
type Config struct {
	// Catalog supplies key-attribute metadata (Definition 11). Nil selects
	// schema.SkyServer().
	Catalog *schema.Catalog
	// DuplicateThreshold is the dedup window (§5.2, Table 4). Zero selects
	// 1 second; dedup.Unrestricted removes all later repeats.
	DuplicateThreshold time.Duration
	// NoDedup skips duplicate deletion entirely.
	NoDedup bool
	// SessionGap splits a user's stream into sessions when consecutive
	// queries are further apart (Definition 8's short-time-gap property).
	// Zero selects 5 minutes; negative disables gap splitting.
	SessionGap time.Duration
	// MinRun is the minimum instance length for Stifle and CTH runs
	// (default 2).
	MinRun int
	// RequireKeyColumn enables Definition 11's key-attribute axiom.
	// DisableKeyCheck inverts it because the zero value must mean "on".
	DisableKeyCheck bool
	// ExtraRules are appended to the default antipattern registry — the
	// §5.4 extension hook.
	ExtraRules []antipattern.Rule
	// ExtraSolvers are appended to the default solver set.
	ExtraSolvers []rewrite.Solver
	// DisableSolve detects antipatterns but leaves the log unchanged (the
	// clean log equals the pre-clean select log).
	DisableSolve bool
	// SolveToFixpoint re-parses and re-solves the clean log until no
	// solvable antipattern remains (bounded by MaxSolvePasses). §5.5 found
	// a single pass leaves only a 0.09 % residue, so the default is one
	// pass.
	SolveToFixpoint bool
	// MaxSolvePasses bounds fixpoint iteration; zero selects 5.
	MaxSolvePasses int
	// SWS configures sliding-window-search classification for the report.
	// The zero value selects pattern.DefaultSWSOptions.
	SWS pattern.SWSOptions
	// SWSMode selects what happens to classified SWS traffic in the clean
	// log (§6.5): keep it (default), exclude it as machine noise, or
	// replace each SWS template's queries by one union query covering the
	// same data space.
	SWSMode SWSMode
	// MaxSequenceLen bounds multi-template sequence mining (default 3;
	// values below 2 disable sequence mining).
	MaxSequenceLen int
	// ClusterThreshold enables overlap clustering of the pre-clean log's
	// predicate boxes (§6.9): each query joins the first cluster whose
	// representative's region is at overlap distance below the threshold.
	// Zero — the default — skips the stage; the paper's operating point is
	// 0.9. Clustering runs on the grid-pruned parallel path, whose output
	// is identical to the quadratic leader scan.
	ClusterThreshold float64
	// Workers is the degree of parallelism for the embarrassingly parallel
	// stages (statement parsing, per-session antipattern detection,
	// per-template SWS classification): 0 selects runtime.GOMAXPROCS, 1
	// forces the serial path, n > 1 uses n workers. Results are identical
	// for every value — only wall-clock time changes. With Workers != 1,
	// custom ExtraRules must be safe for concurrent use.
	Workers int
	// Metrics is an optional observability registry. When non-nil the run
	// updates hot-path counters in it (parse cache hits/misses/waits, stage
	// cardinalities, per-stage duration histograms) and keeps the
	// pipeline_stage text current for live scraping. Nil — the default —
	// keeps every hot path on the zero-overhead nil fast path. The stage-
	// timing tree (Report.Stages) is collected either way: a handful of
	// spans per run costs nothing measurable.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Catalog == nil {
		c.Catalog = schema.SkyServer()
	}
	if c.DuplicateThreshold == 0 {
		c.DuplicateThreshold = time.Second
	}
	if c.SessionGap == 0 {
		c.SessionGap = 5 * time.Minute
	}
	if c.MinRun < 2 {
		c.MinRun = 2
	}
	if c.SWS == (pattern.SWSOptions{}) {
		c.SWS = pattern.DefaultSWSOptions()
	}
	if c.MaxSequenceLen == 0 {
		c.MaxSequenceLen = 3
	}
	if c.MaxSolvePasses == 0 {
		c.MaxSolvePasses = 5
	}
	return c
}

// SWSMode selects the treatment of sliding-window-search traffic (§6.5).
type SWSMode int

// SWS treatment modes.
const (
	// SWSKeep leaves SWS queries in the clean log (the paper's default:
	// SWS is not an antipattern, merely noise for some analyses).
	SWSKeep SWSMode = iota
	// SWSExclude drops SWS queries from the clean log.
	SWSExclude
	// SWSUnion replaces each SWS template's queries with one query whose
	// range filters are widened to the hull — "a union of the filtering
	// conditions, i.e., replacing all these queries with one that yields
	// the same result" (§6.5). Templates whose filters cannot be unioned
	// (non-range predicates) are kept unchanged.
	SWSUnion
)

// Report is the results overview of one run (the paper's Table 5).
type Report struct {
	SizeOriginal    int
	CountSelect     int
	SizeAfterDedup  int
	DuplicatesFound int
	FinalSize       int

	CountTemplates     int
	MaxTemplateFreq    int
	CountDML           int
	CountDDL           int
	CountExec          int
	CountErrors        int
	AntipatternSummary []antipattern.Summary
	SolveStats         []rewrite.Stats
	// SolvePasses is the number of cleaning passes performed (1 unless
	// Config.SolveToFixpoint is set).
	SolvePasses          int
	SWSTemplates         int
	SWSQueries           int
	QueriesInAntipattern int
	// DistinctUsers is the exact count of distinct user identities in the
	// original log — the ground truth the streaming layer's HLL sketch
	// approximates.
	DistinctUsers int

	// ClusterCount and ClusterAvgSize summarize the optional overlap
	// clustering stage (zero when Config.ClusterThreshold is unset).
	ClusterCount   int
	ClusterAvgSize float64
	// ClusterWork counts the clustering stage's pairwise-overlap work and
	// what the unpruned leader scan would have cost.
	ClusterWork overlap.Counters

	// Duration is the run's wall-clock time.
	Duration time.Duration
	// Stages is the hierarchical stage-timing tree: one node per pipeline
	// stage with its duration and input/output cardinalities, and — for the
	// parallel stages — one child per worker goroutine with busy time and
	// chunk/item counts. Serialized by the -json export.
	Stages obs.StageTiming
}

// String renders the report as a Table 5-style block.
func (r Report) String() string {
	pct := func(n int) string {
		if r.SizeOriginal == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2f%%", 100*float64(n)/float64(r.SizeOriginal))
	}
	s := fmt.Sprintf("Size of original query log        %d\n", r.SizeOriginal)
	s += fmt.Sprintf("Count of Select queries           %d (%s)\n", r.CountSelect, pct(r.CountSelect))
	s += fmt.Sprintf("Size of log after deleting dups   %d (%s)\n", r.SizeAfterDedup, pct(r.SizeAfterDedup))
	s += fmt.Sprintf("Final log size                    %d (%s)\n", r.FinalSize, pct(r.FinalSize))
	s += fmt.Sprintf("Count of patterns (templates)     %d\n", r.CountTemplates)
	s += fmt.Sprintf("Maximal pattern frequency         %d\n", r.MaxTemplateFreq)
	for _, a := range r.AntipatternSummary {
		s += fmt.Sprintf("Count of distinct %-15s %d\n", a.Kind, a.Distinct)
		s += fmt.Sprintf("Count of queries in all %-9s %d\n", a.Kind, a.Queries)
	}
	return s
}

// Result is the full outcome of one pipeline run.
type Result struct {
	Config Config

	// Original is the time-sorted input.
	Original logmodel.Log
	// PreClean is the SELECT-only, deduplicated log (Fig. 1's "Pre-clean
	// Query Log" after parsing filtered out non-SELECTs and errors).
	PreClean logmodel.Log
	// Clean is the log with solvable antipatterns rewritten.
	Clean logmodel.Log
	// Removal is the log with all antipattern queries removed (§6.9).
	Removal logmodel.Log

	// Parsed is the annotated pre-clean log; indices in Instances refer to
	// it.
	Parsed parsedlog.Log
	// Sessions are the per-user query bursts of the pre-clean log.
	Sessions []session.Session
	// Templates are the per-template statistics, most frequent first.
	Templates []pattern.TemplateStats
	// Sequences are multi-template patterns (empty if disabled).
	Sequences []pattern.SeqPattern
	// Instances are all detected antipattern instances in log order.
	Instances []antipattern.Instance
	// SWS maps template fingerprints classified as sliding-window search.
	SWS map[uint64]bool
	// Clusters groups the pre-clean log by accessed data region (§6.9);
	// member indices refer to Parsed. Nil unless Config.ClusterThreshold
	// is positive.
	Clusters []overlap.Cluster
	// ClusterStats summarizes Clusters (count, average size, size ranks).
	ClusterStats overlap.Stats
	// Replacements lists every solved instance in clean-log order.
	Replacements []rewrite.Replacement

	Dedup  dedup.Result
	Report Report

	// antiTmpl memoizes AntipatternTemplates (guarded by antiTmplOnce).
	antiTmplOnce sync.Once
	antiTmpl     map[uint64]bool
}

// beginStage opens a stage span under root and publishes the stage name
// for live scraping. Pair with endStage.
func beginStage(root *obs.Span, met *obs.Registry, name string) *obs.Span {
	met.Text("pipeline_stage").Set(name)
	return root.StartChild(name)
}

// endStage freezes the stage span and records its duration into the
// registry's per-stage histogram (no-op without a registry).
func endStage(met *obs.Registry, sp *obs.Span) {
	sp.End()
	met.Histogram("stage_"+sp.Name()+"_duration_ns", obs.DurationBucketsNS).Observe(int64(sp.Duration()))
}

// Run executes the full pipeline over the log.
func Run(input logmodel.Log, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Catalog.Validate(); err != nil {
		return nil, err
	}
	met := cfg.Metrics // nil is the uninstrumented fast path throughout
	root := obs.StartSpan("pipeline")
	met.Counter("pipeline_runs_total").Inc()

	res := &Result{Config: cfg}
	res.Original = input.Clone()
	// Real logs arrive time-ordered, so the common case is a linear
	// sortedness check; only actually-unsorted input pays for the (parallel
	// merge) sort.
	if !res.Original.IsSorted() {
		res.Original.SortStableParallel(cfg.Workers)
	}
	res.Report.SizeOriginal = len(res.Original)
	met.Counter("pipeline_entries_total").Add(int64(len(res.Original)))
	users := make(map[string]struct{})
	for _, e := range res.Original {
		users[e.User] = struct{}{}
	}
	res.Report.DistinctUsers = len(users)

	// Stage 1+2: parse (classify) and keep SELECTs, then delete duplicates.
	// One parser is shared by every stage of the run, so a statement text is
	// parsed exactly once no matter how many passes see it.
	parser := parsedlog.NewParser()
	parser.Instrument(met)
	sp := beginStage(root, met, "parse")
	parsedAll, pstats := parser.ParseParallelSpan(res.Original, cfg.Workers, sp)
	res.Report.CountDML = pstats.DML
	res.Report.CountDDL = pstats.DDL
	res.Report.CountExec = pstats.Exec
	res.Report.CountErrors = pstats.Errors
	res.Report.CountSelect = pstats.Selects
	sp.SetInt("in", int64(len(res.Original)))
	sp.SetInt("selects", int64(pstats.Selects))
	sp.SetInt("errors", int64(pstats.Errors))
	endStage(met, sp)
	met.Counter("pipeline_selects_total").Add(int64(pstats.Selects))

	// Stage 3: the parsed pre-clean log. Dedup reports which entries it
	// kept, so the stage-1 parse results are carried through by index — the
	// pre-clean log is never re-parsed.
	sp = beginStage(root, met, "dedup")
	selParsed := parsedAll.Selects()
	if cfg.NoDedup {
		res.PreClean = selParsed.Raw()
		res.Parsed = selParsed
	} else {
		var kept []int
		res.PreClean, kept, res.Dedup = dedup.RemoveShardedIndexed(selParsed.Raw(), cfg.DuplicateThreshold, cfg.Workers)
		res.Parsed = selParsed.Subset(kept)
	}
	res.Report.DuplicatesFound = res.Dedup.Removed
	res.Report.SizeAfterDedup = len(res.PreClean)
	sp.SetInt("in", int64(len(selParsed)))
	sp.SetInt("out", int64(len(res.PreClean)))
	sp.SetInt("removed", int64(res.Dedup.Removed))
	endStage(met, sp)
	met.Counter("pipeline_duplicates_total").Add(int64(res.Dedup.Removed))

	// Stage 4: sessions, templates, patterns.
	gap := cfg.SessionGap
	if gap < 0 {
		gap = 0
	}
	sp = beginStage(root, met, "sessionize")
	res.Sessions = session.BuildParallel(res.PreClean, session.Options{MaxGap: gap, SplitOnLabel: true}, cfg.Workers)
	sp.SetInt("in", int64(len(res.PreClean)))
	sp.SetInt("sessions", int64(len(res.Sessions)))
	endStage(met, sp)

	sp = beginStage(root, met, "templates")
	res.Templates = pattern.TemplatesParallel(res.Parsed, cfg.Workers)
	res.Report.CountTemplates = len(res.Templates)
	if len(res.Templates) > 0 {
		res.Report.MaxTemplateFreq = res.Templates[0].Frequency
	}
	if cfg.MaxSequenceLen >= 2 {
		res.Sequences = pattern.SequencesParallel(res.Parsed, res.Sessions, cfg.MaxSequenceLen, cfg.Workers)
	}
	sp.SetInt("in", int64(len(res.Parsed)))
	sp.SetInt("templates", int64(len(res.Templates)))
	sp.SetInt("sequences", int64(len(res.Sequences)))
	endStage(met, sp)
	met.Counter("pipeline_templates_total").Add(int64(len(res.Templates)))

	sp = beginStage(root, met, "sws")
	res.SWS = pattern.ClassifySWSParallelSpan(res.Templates, len(res.PreClean), cfg.SWS, cfg.Workers, sp)
	for _, t := range res.Templates {
		if res.SWS[t.Fingerprint] {
			res.Report.SWSTemplates++
			res.Report.SWSQueries += t.Frequency
		}
	}
	sp.SetInt("in", int64(len(res.Templates)))
	sp.SetInt("sws_templates", int64(res.Report.SWSTemplates))
	endStage(met, sp)

	// Optional stage: overlap clustering of the accessed data regions
	// (§6.9). Boxes are derived from the already-parsed pre-clean log, so
	// the stage costs no extra parsing; signature dedup plus the exact grid
	// index keep it near-linear even on all-distinct predicate mixes.
	if cfg.ClusterThreshold > 0 {
		sp = beginStage(root, met, "cluster")
		boxes := parallel.MapSpan(sp, cfg.Workers, res.Parsed, func(_ int, pe parsedlog.Entry) overlap.Box {
			if pe.Info == nil {
				return overlap.Box{Tables: map[string]bool{}, Dims: map[string]overlap.Dim{}}
			}
			return overlap.FromInfo(pe.Info)
		})
		res.Clusters = overlap.ClusterBoxesFastGrid(boxes, cfg.ClusterThreshold, cfg.Workers, &res.Report.ClusterWork)
		res.ClusterStats = overlap.Summarize(res.Clusters)
		res.Report.ClusterCount = res.ClusterStats.Count
		res.Report.ClusterAvgSize = res.ClusterStats.AvgSize
		sp.SetInt("in", int64(len(boxes)))
		sp.SetInt("clusters", int64(res.ClusterStats.Count))
		sp.SetInt("comparisons", res.Report.ClusterWork.Comparisons)
		sp.SetInt("comparisons_avoided", res.Report.ClusterWork.Avoided())
		endStage(met, sp)
		met.Counter("cluster_boxes_total").Add(int64(len(boxes)))
		met.Counter("cluster_clusters_total").Add(int64(res.ClusterStats.Count))
		met.Counter("cluster_cells_probed_total").Add(res.Report.ClusterWork.CellsProbed)
		met.Counter("cluster_comparisons_total").Add(res.Report.ClusterWork.Comparisons)
		met.Counter("cluster_comparisons_avoided_total").Add(res.Report.ClusterWork.Avoided())
	}

	// Stage 5: detect antipatterns.
	reg := antipattern.DefaultRegistry(cfg.Catalog, antipattern.Options{
		MinRun:           cfg.MinRun,
		RequireKeyColumn: !cfg.DisableKeyCheck,
	})
	for _, r := range cfg.ExtraRules {
		reg.Register(r)
	}
	sp = beginStage(root, met, "detect")
	res.Instances = reg.DetectParallelSpan(res.Parsed, res.Sessions, cfg.Workers, sp)
	res.Report.AntipatternSummary = antipattern.Summarize(res.Instances)
	// []bool indexed by parsed-log position: instance indices are dense in
	// [0, len(Parsed)), so a map here is pure overhead on template-heavy logs.
	inAnti := make([]bool, len(res.Parsed))
	queriesInAnti := 0
	for _, in := range res.Instances {
		for _, idx := range in.Indices {
			if !inAnti[idx] {
				inAnti[idx] = true
				queriesInAnti++
			}
		}
	}
	res.Report.QueriesInAntipattern = queriesInAnti
	sp.SetInt("sessions", int64(len(res.Sessions)))
	sp.SetInt("instances", int64(len(res.Instances)))
	sp.SetInt("queries_in_antipattern", int64(queriesInAnti))
	endStage(met, sp)
	met.Counter("pipeline_instances_total").Add(int64(len(res.Instances)))

	// Stage 6: solve antipatterns.
	sp = beginStage(root, met, "solve")
	if cfg.DisableSolve {
		res.Clean = res.PreClean.Clone()
		res.Removal = res.PreClean.Clone()
	} else {
		solvers := rewrite.DefaultSolvers(cfg.Catalog)
		solvers = append(solvers, cfg.ExtraSolvers...)
		rres := rewrite.Apply(res.Parsed, res.Instances, solvers)
		res.Clean = rres.Clean
		res.Removal = rres.Removal
		res.Report.SolveStats = rres.Stats
		res.Replacements = rres.Replacements
		res.Report.SolvePasses = 1

		// §5.5: merged statements can in rare cases form new solvable
		// antipatterns; optionally iterate to a fixpoint. The shared parser
		// makes each pass parse only the statements the previous pass
		// changed — everything else is a cache hit.
		if cfg.SolveToFixpoint {
			for pass := 1; pass < cfg.MaxSolvePasses; pass++ {
				psp := sp.StartChild(fmt.Sprintf("pass%02d", pass+1))
				parsed, _ := parser.ParseParallelSpan(res.Clean, cfg.Workers, psp)
				sessions := session.BuildParallel(res.Clean, session.Options{MaxGap: gap, SplitOnLabel: true}, cfg.Workers)
				instances := reg.DetectParallelSpan(parsed, sessions, cfg.Workers, psp)
				next := rewrite.Apply(parsed, instances, solvers)
				psp.SetInt("instances", int64(len(instances)))
				psp.End()
				if len(next.Clean) == len(res.Clean) {
					break
				}
				res.Clean = next.Clean
				res.Report.SolveStats = append(res.Report.SolveStats, next.Stats...)
				res.Report.SolvePasses = pass + 1
			}
		}
	}
	sp.SetInt("passes", int64(res.Report.SolvePasses))
	sp.SetInt("replacements", int64(len(res.Replacements)))
	sp.SetInt("out", int64(len(res.Clean)))
	endStage(met, sp)
	for _, s := range res.Report.SolveStats {
		met.Counter("pipeline_solved_queries_total").Add(int64(s.QueriesBefore - s.QueriesAfter))
	}

	// §6.5: optional SWS treatment of the clean log.
	if cfg.SWSMode != SWSKeep && len(res.SWS) > 0 {
		sp = beginStage(root, met, "sws-mode")
		in := len(res.Clean)
		res.Clean = applySWSMode(res.Clean, res.SWS, cfg.SWSMode, parser, cfg.Workers, sp)
		sp.SetInt("in", int64(in))
		sp.SetInt("out", int64(len(res.Clean)))
		endStage(met, sp)
	}
	res.Report.FinalSize = len(res.Clean)
	met.Text("pipeline_stage").Set("done")

	root.SetInt("in", int64(len(res.Original)))
	root.SetInt("out", int64(len(res.Clean)))
	root.End()
	res.Report.Duration = root.Duration()
	res.Report.Stages = root.Snapshot()
	met.Histogram("pipeline_duration_ns", obs.DurationBucketsNS).Observe(int64(res.Report.Duration))
	return res, nil
}

// applySWSMode drops or unions the clean log's SWS-template queries. The
// run's shared parser makes the lookup parse only rewritten statements.
func applySWSMode(clean logmodel.Log, sws map[uint64]bool, mode SWSMode, parser *parsedlog.Parser, workers int, sp *obs.Span) logmodel.Log {
	parsed, _ := parser.ParseParallelSpan(clean, workers, sp)

	// Group SWS entries per fingerprint, in log order. Fingerprints map to
	// dense group slots (first-appearance order), so the per-entry state —
	// membership, replacement text, group id — lives in preallocated slices
	// indexed by log position instead of per-entry map inserts.
	groupOf := make(map[uint64]int, len(sws))
	var groups [][]int
	isSWS := make([]bool, len(parsed))
	groupAt := make([]int, len(parsed))
	for i, pe := range parsed {
		if pe.Info != nil && sws[pe.Info.Fingerprint] {
			isSWS[i] = true
			g, ok := groupOf[pe.Info.Fingerprint]
			if !ok {
				g = len(groups)
				groups = append(groups, nil)
				groupOf[pe.Info.Fingerprint] = g
			}
			groups[g] = append(groups[g], i)
			groupAt[i] = g
		}
	}

	// For union mode, compute one replacement statement per group; groups
	// whose filters cannot be unioned stay untouched.
	var replaceAt []string
	unioned := make([]bool, len(groups))
	if mode == SWSUnion {
		replaceAt = make([]string, len(parsed))
		for g, idxs := range groups {
			infos := make([]*skeleton.Info, 0, len(idxs))
			for _, i := range idxs {
				infos = append(infos, parsed[i].Info)
			}
			stmt, err := rewrite.UnionTemplate(infos)
			if err != nil {
				continue
			}
			replaceAt[idxs[0]] = stmt
			unioned[g] = true
		}
	}

	out := make(logmodel.Log, 0, len(clean))
	for i, e := range clean {
		if !isSWS[i] {
			out = append(out, e)
			continue
		}
		switch mode {
		case SWSExclude:
			continue
		case SWSUnion:
			if stmt := replaceAt[i]; stmt != "" {
				ne := e
				ne.Statement = stmt
				ne.Rows = -1 // the union's row count is unknown
				out = append(out, ne)
				continue
			}
			if unioned[groupAt[i]] {
				continue // consumed by the group's union query
			}
			out = append(out, e) // group not unionable: keep
		}
	}
	return out
}

// IsAntipatternTemplate reports whether the template fingerprint occurs as
// (part of) any detected antipattern instance — used to mark antipatterns in
// Fig. 2(a)-style rankings. The instance scan runs once (see
// AntipatternTemplates); each call after the first is one map lookup.
func (r *Result) IsAntipatternTemplate(fp uint64) bool {
	return r.AntipatternTemplates()[fp]
}

// AntipatternTemplates returns the set of template fingerprints that occur
// inside antipattern instances. The set is computed on first use and cached
// on the Result (safe for concurrent callers); treat it as read-only.
func (r *Result) AntipatternTemplates() map[uint64]bool {
	r.antiTmplOnce.Do(func() {
		out := make(map[uint64]bool, len(r.Instances))
		for _, in := range r.Instances {
			for _, idx := range in.Indices {
				e := &r.Parsed[idx]
				if e.Info != nil {
					out[e.Info.Fingerprint] = true
				}
			}
		}
		r.antiTmpl = out
	})
	return r.antiTmpl
}
