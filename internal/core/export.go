package core

import (
	"encoding/json"
	"io"
	"time"

	"sqlclean/internal/obs"
)

// The JSON export is the machine-readable counterpart of Fig. 1's result
// artifacts: the statistics block, the query templates, the mined patterns
// and every antipattern instance (with concrete statements), so downstream
// analyses can consume a cleaning run without linking against the library.

// ExportDoc is the top-level JSON document.
type ExportDoc struct {
	Report       ReportJSON        `json:"report"`
	Templates    []TemplateJSON    `json:"templates"`
	Sequences    []SequenceJSON    `json:"sequences,omitempty"`
	Instances    []InstanceJSON    `json:"instances"`
	Replacements []ReplacementJSON `json:"replacements,omitempty"`
}

// ReportJSON mirrors Report with stable JSON names.
type ReportJSON struct {
	SizeOriginal    int `json:"size_original"`
	CountSelect     int `json:"count_select"`
	SizeAfterDedup  int `json:"size_after_dedup"`
	DuplicatesFound int `json:"duplicates_found"`
	FinalSize       int `json:"final_size"`
	CountTemplates  int `json:"count_templates"`
	MaxTemplateFreq int `json:"max_template_frequency"`
	CountDML        int `json:"count_dml"`
	CountDDL        int `json:"count_ddl"`
	CountExec       int `json:"count_exec"`
	CountErrors     int `json:"count_errors"`
	SolvePasses     int `json:"solve_passes"`
	SWSTemplates    int `json:"sws_templates"`
	SWSQueries      int `json:"sws_queries"`
	DistinctUsers   int `json:"distinct_users"`

	// Clustering summary (present only when the run clustered).
	ClusterCount              int     `json:"cluster_count,omitempty"`
	ClusterAvgSize            float64 `json:"cluster_avg_size,omitempty"`
	ClusterComparisons        int64   `json:"cluster_comparisons,omitempty"`
	ClusterComparisonsAvoided int64   `json:"cluster_comparisons_avoided,omitempty"`

	// DurationNS is the run's wall-clock time in nanoseconds; Stages is
	// the hierarchical stage-timing tree (per-stage durations,
	// cardinalities, and per-worker utilization for parallel stages).
	DurationNS int64            `json:"duration_ns"`
	Stages     *obs.StageTiming `json:"stages,omitempty"`

	Antipatterns []AntipatternSummaryJSON `json:"antipatterns"`
	Solves       []SolveJSON              `json:"solves,omitempty"`
}

// AntipatternSummaryJSON is one per-kind aggregate.
type AntipatternSummaryJSON struct {
	Kind      string `json:"kind"`
	Distinct  int    `json:"distinct"`
	Instances int    `json:"instances"`
	Queries   int    `json:"queries"`
}

// SolveJSON is one per-kind solving aggregate.
type SolveJSON struct {
	Kind          string `json:"kind"`
	Solved        int    `json:"solved"`
	Failed        int    `json:"failed"`
	QueriesBefore int    `json:"queries_before"`
	QueriesAfter  int    `json:"queries_after"`
}

// TemplateJSON is one query template's statistics.
type TemplateJSON struct {
	Fingerprint    uint64  `json:"fingerprint"`
	Skeleton       string  `json:"skeleton"`
	Frequency      int     `json:"frequency"`
	UserPopularity int     `json:"user_popularity"`
	DisjointRatio  float64 `json:"disjoint_ratio"`
	SWS            bool    `json:"sws"`
	Antipattern    bool    `json:"antipattern"`
	Example        string  `json:"example"`
}

// SequenceJSON is one multi-template pattern.
type SequenceJSON struct {
	Skeletons      []string `json:"skeletons"`
	Frequency      int      `json:"frequency"`
	Queries        int      `json:"queries"`
	UserPopularity int      `json:"user_popularity"`
}

// InstanceJSON is one antipattern instance with its concrete statements.
type InstanceJSON struct {
	Kind       string    `json:"kind"`
	User       string    `json:"user,omitempty"`
	Identity   string    `json:"identity"`
	Solvable   bool      `json:"solvable"`
	FirstTime  time.Time `json:"first_time"`
	Statements []string  `json:"statements"`
}

// ReplacementJSON is one solved instance's rewrite.
type ReplacementJSON struct {
	Kind      string `json:"kind"`
	Replaced  int    `json:"replaced"`
	Statement string `json:"statement"`
}

// Export builds the JSON document for a pipeline result. maxInstances
// bounds the instance list (0 = all).
func Export(res *Result, maxInstances int) ExportDoc {
	doc := ExportDoc{}
	r := res.Report
	doc.Report = ReportJSON{
		SizeOriginal:    r.SizeOriginal,
		CountSelect:     r.CountSelect,
		SizeAfterDedup:  r.SizeAfterDedup,
		DuplicatesFound: r.DuplicatesFound,
		FinalSize:       r.FinalSize,
		CountTemplates:  r.CountTemplates,
		MaxTemplateFreq: r.MaxTemplateFreq,
		CountDML:        r.CountDML,
		CountDDL:        r.CountDDL,
		CountExec:       r.CountExec,
		CountErrors:     r.CountErrors,
		SolvePasses:     r.SolvePasses,
		SWSTemplates:    r.SWSTemplates,
		SWSQueries:      r.SWSQueries,
		DistinctUsers:   r.DistinctUsers,
		DurationNS:      int64(r.Duration),

		ClusterCount:              r.ClusterCount,
		ClusterAvgSize:            r.ClusterAvgSize,
		ClusterComparisons:        r.ClusterWork.Comparisons,
		ClusterComparisonsAvoided: r.ClusterWork.Avoided(),
	}
	if r.Stages.Name != "" {
		stages := r.Stages
		doc.Report.Stages = &stages
	}
	for _, a := range r.AntipatternSummary {
		doc.Report.Antipatterns = append(doc.Report.Antipatterns, AntipatternSummaryJSON{
			Kind: string(a.Kind), Distinct: a.Distinct, Instances: a.Instances, Queries: a.Queries,
		})
	}
	for _, s := range r.SolveStats {
		doc.Report.Solves = append(doc.Report.Solves, SolveJSON{
			Kind: string(s.Kind), Solved: s.Solved, Failed: s.Failed,
			QueriesBefore: s.QueriesBefore, QueriesAfter: s.QueriesAfter,
		})
	}

	anti := res.AntipatternTemplates()
	for _, t := range res.Templates {
		doc.Templates = append(doc.Templates, TemplateJSON{
			Fingerprint:    t.Fingerprint,
			Skeleton:       t.Skeleton,
			Frequency:      t.Frequency,
			UserPopularity: t.UserPopularity,
			DisjointRatio:  t.DisjointRatio(),
			SWS:            res.SWS[t.Fingerprint],
			Antipattern:    anti[t.Fingerprint],
			Example:        t.Example,
		})
	}
	for _, sp := range res.Sequences {
		doc.Sequences = append(doc.Sequences, SequenceJSON{
			Skeletons:      sp.Skeletons,
			Frequency:      sp.Frequency,
			Queries:        sp.Queries,
			UserPopularity: sp.UserPopularity,
		})
	}
	for i, in := range res.Instances {
		if maxInstances > 0 && i >= maxInstances {
			break
		}
		ij := InstanceJSON{
			Kind:      string(in.Kind),
			User:      in.User,
			Identity:  in.Identity,
			Solvable:  in.Solvable,
			FirstTime: res.Parsed[in.Indices[0]].Time,
		}
		for _, idx := range in.Indices {
			ij.Statements = append(ij.Statements, res.Parsed[idx].Statement)
		}
		doc.Instances = append(doc.Instances, ij)
	}
	for _, rp := range res.Replacements {
		doc.Replacements = append(doc.Replacements, ReplacementJSON{
			Kind: string(rp.Kind), Replaced: rp.Replaced, Statement: rp.Statement,
		})
	}
	return doc
}

// WriteJSON writes the export document, indented, to w.
func WriteJSON(w io.Writer, res *Result, maxInstances int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Export(res, maxInstances))
}

// ReadJSON reads back an export document.
func ReadJSON(r io.Reader) (ExportDoc, error) {
	var doc ExportDoc
	err := json.NewDecoder(r).Decode(&doc)
	return doc, err
}
