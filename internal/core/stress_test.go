package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/sqlparser"
)

// TestPipelineOnRandomStatementSoup stress-tests the pipeline with random
// statement soups: fragments of valid SQL, broken SQL, DML, weird
// timestamps and user churn. Invariants: Run never fails on any input log,
// the clean log only shrinks, every clean statement reparses, and the
// report adds up.
func TestPipelineOnRandomStatementSoup(t *testing.T) {
	fragments := []string{
		"SELECT a FROM t WHERE id = %d",
		"SELECT a, b FROM t WHERE id = %d AND x > %d",
		"SELECT * FROM photoprimary WHERE objid = %d",
		"SELECT name FROM dbobjects WHERE name = 'n%d'",
		"SELECT count(*) FROM t WHERE h >= %d AND h <= %d",
		"SELECT x FROM t WHERE y = NULL",
		"INSERT INTO t VALUES (%d)",
		"UPDATE t SET a = %d",
		"CREATE TABLE t%d (a int)",
		"SELECT FROM t",         // broken
		"SELECT a FROM",         // broken
		"garbage %d",            // broken
		"SELECT a FROM t WHERE", // broken
		"EXEC sp_x %d",
		"SELECT a FROM t1 JOIN t2 ON t1.x = t2.x WHERE t1.id = %d",
		"SELECT 'str with; semicolon' FROM t WHERE id = %d",
	}
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
		n := 100 + rng.Intn(400)
		l := make(logmodel.Log, 0, n)
		for i := 0; i < n; i++ {
			f := fragments[rng.Intn(len(fragments))]
			stmt := f
			switch countVerbs(f) {
			case 1:
				stmt = sprintf1(f, rng.Intn(100))
			case 2:
				stmt = sprintf2(f, rng.Intn(100), rng.Intn(100))
			}
			l = append(l, logmodel.Entry{
				Seq:       int64(i),
				Time:      base.Add(time.Duration(rng.Intn(100000)) * time.Second),
				User:      fmt.Sprintf("u%d", rng.Intn(5)),
				Rows:      int64(rng.Intn(10)) - 1,
				Statement: stmt,
			})
		}
		res, err := Run(l, Config{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(res.Clean) > len(res.PreClean) {
			t.Fatalf("trial %d: clean grew", trial)
		}
		for _, e := range res.Clean {
			if _, err := sqlparser.ParseSelect(e.Statement); err != nil {
				t.Fatalf("trial %d: clean statement broken: %q: %v", trial, e.Statement, err)
			}
		}
		r := res.Report
		if r.CountSelect+r.CountDML+r.CountDDL+r.CountExec+r.CountErrors != len(l) {
			t.Fatalf("trial %d: class counts do not add up", trial)
		}
		// Every instance index is in range and instances are per-user.
		for _, in := range res.Instances {
			user := ""
			for k, idx := range in.Indices {
				if idx < 0 || idx >= len(res.Parsed) {
					t.Fatalf("trial %d: index out of range", trial)
				}
				if k == 0 {
					user = res.Parsed[idx].User
				} else if res.Parsed[idx].User != user {
					t.Fatalf("trial %d: instance spans users", trial)
				}
			}
		}
	}
}

func countVerbs(f string) int {
	n := 0
	for i := 0; i+1 < len(f); i++ {
		if f[i] == '%' && f[i+1] == 'd' {
			n++
		}
	}
	return n
}

func sprintf1(f string, a int) string    { return fmt.Sprintf(f, a) }
func sprintf2(f string, a, b int) string { return fmt.Sprintf(f, a, b) }

// TestSoakLargeScale runs the full pipeline at several times the default
// workload size and checks the global invariants hold at scale. Skipped
// under -short.
func TestSoakLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	log, _ := workloadGen(3.0)
	res, err := Run(log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.CountSelect+r.CountDML+r.CountDDL+r.CountExec+r.CountErrors != len(log) {
		t.Error("class counts do not add up at scale")
	}
	if len(res.Clean) >= len(res.PreClean) {
		t.Error("no shrinkage at scale")
	}
	sum := 0
	for _, tp := range res.Templates {
		sum += tp.Frequency
	}
	if sum != len(res.PreClean) {
		t.Error("template frequencies do not cover the log at scale")
	}
	for _, e := range res.Clean[:200] {
		if _, err := sqlparser.ParseSelect(e.Statement); err != nil {
			t.Fatalf("clean statement broken at scale: %v", err)
		}
	}
}
