package core

import (
	"sqlclean/internal/logmodel"
	"sqlclean/internal/schema"
	"sqlclean/internal/workload"
)

// schemaWithBrokenTable returns a catalog that fails Validate (a table
// without columns).
func schemaWithBrokenTable() *schema.Catalog {
	c := schema.New()
	c.AddTable("broken")
	return c
}

// workloadGen builds the default synthetic workload at the given scale.
func workloadGen(scale float64) (logmodel.Log, *workload.Truth) {
	return workload.Generate(workload.DefaultConfig().Scale(scale))
}
