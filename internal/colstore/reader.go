// Block decoding and the store-level scan API. Reads come in two sizes:
// index reads (meta + template dictionary only — what /history and eviction
// need, no column payload is ever decompressed) and full scans that
// reconstitute logmodel entries bit-identically to the journal frames they
// were compacted from.
package colstore

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"sqlclean/internal/logmodel"
)

// BlockMeta is the index header of one block: enough to prune by time range
// or LSN without touching any column.
type BlockMeta struct {
	Path     string
	Entries  int
	MinTime  time.Time
	MaxTime  time.Time
	FirstLSN uint64
	LastLSN  uint64
	Bytes    int64
}

// Template is one dictionary entry as stored: the lexical skeleton, the
// engine identity attached at compaction time (0 when compacted offline),
// the antipattern verdicts then known, and the per-template index used for
// pruning and trend counts.
type Template struct {
	Skeleton string
	Slots    int
	Opaque   bool
	EngineFP uint64
	Verdicts []string
	Count    int
	MinTime  time.Time
	MaxTime  time.Time
}

// LexicalFP is the template's stable lexical fingerprint.
func (t Template) LexicalFP() uint64 { return Fingerprint(t.Skeleton) }

// Block is one open block file. Column sections stay compressed until asked
// for; Meta and Templates are decoded eagerly.
type Block struct {
	Meta      BlockMeta
	Templates []Template
	secs      map[byte]rawSection
}

type rawSection struct {
	enc  byte
	body []byte
}

// ErrCorrupt reports a block whose framing, CRC or section layout is
// invalid. Unlike the journal (where a torn tail is the normal crash
// signature), a block is written atomically, so any damage is real.
var ErrCorrupt = errors.New("colstore: corrupt block")

// OpenBlock reads and verifies a whole block file. Every section frame's
// CRC is checked; column payloads are kept compressed until first use.
func OpenBlock(path string) (*Block, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b, err := decodeBlock(data, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
	}
	b.Meta.Path = path
	b.Meta.Bytes = int64(len(data))
	return b, nil
}

// ReadBlockIndex reads only the meta and dictionary sections of a block —
// the cheap read behind /history pruning and store listings.
func ReadBlockIndex(path string) (*Block, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != blockMagic {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	b := &Block{secs: map[byte]rawSection{}}
	for len(b.secs) < 2 {
		typ, sec, err := readSection(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
		}
		b.secs[typ] = sec
	}
	if err := b.decodeIndex(); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
	}
	b.Meta.Path = path
	if fi, err := f.Stat(); err == nil {
		b.Meta.Bytes = fi.Size()
	}
	return b, nil
}

func decodeBlock(data []byte, _ int) (*Block, error) {
	if len(data) < len(blockMagic) || !bytes.Equal(data[:8], blockMagic[:]) {
		return nil, errors.New("bad magic")
	}
	rest := data[8:]
	b := &Block{secs: map[byte]rawSection{}}
	for len(rest) > 0 {
		if len(rest) < 8 {
			return nil, errors.New("truncated section header")
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		wantCRC := binary.LittleEndian.Uint32(rest[4:8])
		if length < 2 || int(length) > len(rest)-8 {
			return nil, errors.New("truncated section body")
		}
		body := rest[8 : 8+length]
		if crc32.Checksum(body, castagnoli) != wantCRC {
			return nil, errors.New("section CRC mismatch")
		}
		b.secs[body[0]] = rawSection{enc: body[1], body: body[2:]}
		rest = rest[8+length:]
	}
	if err := b.decodeIndex(); err != nil {
		return nil, err
	}
	return b, nil
}

// readSection reads one framed section from a stream.
func readSection(br *bufio.Reader) (byte, rawSection, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, rawSection{}, errors.New("truncated section header")
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	if length < 2 {
		return 0, rawSection{}, errors.New("short section")
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(br, body); err != nil {
		return 0, rawSection{}, errors.New("truncated section body")
	}
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return 0, rawSection{}, errors.New("section CRC mismatch")
	}
	return body[0], rawSection{enc: body[1], body: body[2:]}, nil
}

// section returns a section's decompressed payload.
func (b *Block) section(typ byte) ([]byte, error) {
	sec, ok := b.secs[typ]
	if !ok {
		return nil, fmt.Errorf("missing section %d", typ)
	}
	switch sec.enc {
	case encRaw:
		return sec.body, nil
	case encFlate:
		out, err := io.ReadAll(flate.NewReader(bytes.NewReader(sec.body)))
		if err != nil {
			return nil, fmt.Errorf("section %d: %v", typ, err)
		}
		return out, nil
	}
	return nil, fmt.Errorf("section %d: unknown encoding %d", typ, sec.enc)
}

func (b *Block) decodeIndex() error {
	meta, err := b.section(secMeta)
	if err != nil {
		return err
	}
	d := decoder{buf: meta}
	n := int(d.uvarint())
	minNS := d.varint()
	maxNS := d.varint()
	b.Meta.FirstLSN = d.uvarint()
	b.Meta.LastLSN = d.uvarint()
	if d.err != nil {
		return errors.New("bad meta section")
	}
	b.Meta.Entries = n
	b.Meta.MinTime = time.Unix(0, minNS).UTC()
	b.Meta.MaxTime = time.Unix(0, maxNS).UTC()

	dict, err := b.section(secDict)
	if err != nil {
		return err
	}
	d = decoder{buf: dict}
	nt := int(d.uvarint())
	if d.err != nil || nt < 0 || nt > n {
		return errors.New("bad dictionary count")
	}
	b.Templates = make([]Template, 0, nt)
	for i := 0; i < nt; i++ {
		flags := d.byte()
		t := Template{
			Skeleton: d.string(),
			Slots:    int(d.uvarint()),
			Opaque:   flags&1 != 0,
			EngineFP: d.uvarint(),
		}
		nv := int(d.uvarint())
		if d.err != nil || nv > len(dict) {
			return errors.New("bad dictionary entry")
		}
		for j := 0; j < nv; j++ {
			t.Verdicts = append(t.Verdicts, d.string())
		}
		t.Count = int(d.uvarint())
		t.MinTime = time.Unix(0, d.varint()).UTC()
		t.MaxTime = time.Unix(0, d.varint()).UTC()
		if d.err != nil {
			return errors.New("bad dictionary entry")
		}
		b.Templates = append(b.Templates, t)
	}
	return nil
}

// LoadColumns is Columns for a block opened index-only (ReadBlockIndex): it
// reads the time and template-ID sections from the block file on demand.
// Sections are laid out in fixed order with the trend columns right after
// the dictionary, so the read stops before any statement, user or parameter
// bytes.
func (b *Block) LoadColumns() (timesNS []int64, tids []uint32, err error) {
	_, haveTime := b.secs[secTime]
	_, haveTID := b.secs[secTID]
	if !haveTime || !haveTID {
		if err := b.loadSectionsThrough(secTID); err != nil {
			return nil, nil, err
		}
	}
	return b.Columns()
}

// loadSectionsThrough re-reads the block file, caching every section up to
// and including typ (the fixed section order makes "through" well-defined).
func (b *Block) loadSectionsThrough(typ byte) error {
	f, err := os.Open(b.Meta.Path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != blockMagic {
		return fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(b.Meta.Path))
	}
	for {
		t, sec, err := readSection(br)
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(b.Meta.Path), err)
		}
		if _, ok := b.secs[t]; !ok {
			b.secs[t] = sec
		}
		if t == typ {
			return nil
		}
	}
}

// Columns decodes the time and template-ID columns — what a trend query
// consumes. No statement, user or parameter bytes are materialized.
func (b *Block) Columns() (timesNS []int64, tids []uint32, err error) {
	tsec, err := b.section(secTime)
	if err != nil {
		return nil, nil, err
	}
	d := decoder{buf: tsec}
	timesNS = make([]int64, b.Meta.Entries)
	prev := int64(0)
	for i := range timesNS {
		prev += d.varint()
		timesNS[i] = prev
	}
	isec, err := b.section(secTID)
	if err != nil {
		return nil, nil, err
	}
	d2 := decoder{buf: isec}
	tids = make([]uint32, b.Meta.Entries)
	for i := range tids {
		tids[i] = uint32(d2.uvarint())
	}
	if d.err != nil || d2.err != nil {
		return nil, nil, fmt.Errorf("%w: bad column section", ErrCorrupt)
	}
	return timesNS, tids, nil
}

// Scan fully decodes the block, calling fn for every entry in journal order
// with its original LSN. The reconstructed entries are byte-identical to
// the journal frames the block was compacted from.
func (b *Block) Scan(fn func(lsn uint64, e logmodel.Entry) error) error {
	return b.scan(nil, fn)
}

// scan is Scan with an optional per-template allow-list (indexed by the
// block-local template id; nil admits everything). Non-matching entries are
// still cursor-advanced — parameter streams are positional — but their
// statements are never joined.
func (b *Block) scan(match []bool, fn func(lsn uint64, e logmodel.Entry) error) error {
	timesNS, tids, err := b.Columns()
	if err != nil {
		return err
	}
	seqSec, err := b.section(secSeq)
	if err != nil {
		return err
	}
	rowsSec, err := b.section(secRows)
	if err != nil {
		return err
	}
	userSec, err := b.section(secUsers)
	if err != nil {
		return err
	}
	sessSec, err := b.section(secSessions)
	if err != nil {
		return err
	}
	paramSec, err := b.section(secParams)
	if err != nil {
		return err
	}

	n := b.Meta.Entries
	d := decoder{buf: seqSec}
	seqs := make([]int64, n)
	prev := int64(0)
	for i := range seqs {
		prev += d.varint()
		seqs[i] = prev
	}
	dr := decoder{buf: rowsSec}
	rows := make([]int64, n)
	for i := range rows {
		rows[i] = dr.varint()
	}
	users, userIDs, uerr := decodeStringDict(userSec, n)
	sessions, sessIDs, serr := decodeStringDict(sessSec, n)
	if d.err != nil || dr.err != nil || uerr != nil || serr != nil {
		return fmt.Errorf("%w: bad column section", ErrCorrupt)
	}

	// Parameter cursors: values are grouped by (template, slot) in entry
	// order, so each (template, slot) pair advances independently.
	dp := decoder{buf: paramSec}
	params := make([][][]string, len(b.Templates))
	for ti, t := range b.Templates {
		params[ti] = make([][]string, t.Slots)
		for s := 0; s < t.Slots; s++ {
			params[ti][s] = make([]string, 0, t.Count)
			for k := 0; k < t.Count; k++ {
				params[ti][s] = append(params[ti][s], dp.string())
			}
		}
	}
	if dp.err != nil {
		return fmt.Errorf("%w: bad params section", ErrCorrupt)
	}
	cursors := make([]int, len(b.Templates))

	scratch := make([]string, 0, 8)
	for i := 0; i < n; i++ {
		ti := int(tids[i])
		if ti >= len(b.Templates) ||
			int(userIDs[i]) >= len(users) || int(sessIDs[i]) >= len(sessions) {
			return fmt.Errorf("%w: column id out of range", ErrCorrupt)
		}
		t := &b.Templates[ti]
		if match != nil && !match[ti] {
			cursors[ti]++
			continue
		}
		stmt := t.Skeleton
		if t.Slots > 0 {
			k := cursors[ti]
			scratch = scratch[:0]
			for s := 0; s < t.Slots; s++ {
				scratch = append(scratch, params[ti][s][k])
			}
			cursors[ti] = k + 1
			stmt = Join(t.Skeleton, scratch)
		} else {
			cursors[ti]++
		}
		e := logmodel.Entry{
			Seq:       seqs[i],
			Time:      time.Unix(0, timesNS[i]).UTC(),
			User:      users[userIDs[i]],
			Session:   sessions[sessIDs[i]],
			Rows:      rows[i],
			Statement: stmt,
		}
		if err := fn(b.Meta.FirstLSN+uint64(i), e); err != nil {
			return err
		}
	}
	return nil
}

func decodeStringDict(buf []byte, n int) (vals []string, ids []uint32, err error) {
	d := decoder{buf: buf}
	nv := int(d.uvarint())
	if d.err != nil || nv < 0 || nv > len(buf)+1 {
		return nil, nil, errors.New("bad string dictionary")
	}
	vals = make([]string, 0, nv)
	for i := 0; i < nv; i++ {
		vals = append(vals, d.string())
	}
	ids = make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(d.uvarint())
	}
	if d.err != nil {
		return nil, nil, errors.New("bad string dictionary")
	}
	return vals, ids, nil
}

// decoder is a cursor over a section payload; the first error sticks.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = errors.New("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = errors.New("bad varint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.err = errors.New("short buffer")
		return 0
	}
	c := d.buf[d.off]
	d.off++
	return c
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.err = errors.New("string overruns buffer")
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Reader is the scan API over a store directory of blocks.
type Reader struct {
	dir string
}

// NewReader opens a reader over dir. The directory need not exist yet; an
// absent directory reads as an empty store.
func NewReader(dir string) *Reader { return &Reader{dir: dir} }

// Blocks lists the store's blocks in LSN order using index-only reads.
// Corrupt blocks are skipped (reported in the returned error alongside the
// good blocks), never fatal: retention must degrade, not fail closed.
func (r *Reader) Blocks() ([]*Block, error) {
	paths, err := listBlockFiles(r.dir)
	if err != nil {
		return nil, err
	}
	var blocks []*Block
	var firstErr error
	for _, p := range paths {
		b, err := ReadBlockIndex(p)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		blocks = append(blocks, b)
	}
	return blocks, firstErr
}

// ScanOptions filter a store scan. Zero From/To mean unbounded; an empty
// Templates set matches every template. A template matches when the filter
// contains either its engine fingerprint or its lexical fingerprint.
type ScanOptions struct {
	From      time.Time
	To        time.Time
	Templates map[uint64]bool
}

func (o ScanOptions) matchTemplate(t Template) bool {
	if len(o.Templates) == 0 {
		return true
	}
	if t.EngineFP != 0 && o.Templates[t.EngineFP] {
		return true
	}
	return o.Templates[t.LexicalFP()]
}

func (o ScanOptions) pruneBlock(minT, maxT time.Time) bool {
	if !o.From.IsZero() && maxT.Before(o.From) {
		return true
	}
	if !o.To.IsZero() && minT.After(o.To) {
		return true
	}
	return false
}

// Scan streams matching entries from every block, in LSN order, through fn.
// Blocks (and templates, via the per-template time index) outside the
// filter are pruned without decoding their columns.
func (r *Reader) Scan(opts ScanOptions, fn func(lsn uint64, e logmodel.Entry) error) error {
	paths, err := listBlockFiles(r.dir)
	if err != nil {
		return err
	}
	for _, p := range paths {
		idx, err := ReadBlockIndex(p)
		if err != nil {
			return err
		}
		if opts.pruneBlock(idx.Meta.MinTime, idx.Meta.MaxTime) {
			continue
		}
		match := make([]bool, len(idx.Templates))
		anyTemplate := false
		for ti, t := range idx.Templates {
			if opts.matchTemplate(t) && !opts.pruneBlock(t.MinTime, t.MaxTime) {
				match[ti] = true
				anyTemplate = true
			}
		}
		if !anyTemplate {
			continue
		}
		b, err := OpenBlock(p)
		if err != nil {
			return err
		}
		err = b.scan(match, func(lsn uint64, e logmodel.Entry) error {
			if !opts.From.IsZero() && e.Time.Before(opts.From) {
				return nil
			}
			if !opts.To.IsZero() && e.Time.After(opts.To) {
				return nil
			}
			return fn(lsn, e)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// listBlockFiles returns block paths sorted by first LSN.
func listBlockFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	type entry struct {
		first uint64
		path  string
	}
	var list []entry
	for _, ent := range ents {
		first, _, ok := parseBlockName(ent.Name())
		if !ok || ent.IsDir() {
			continue
		}
		list = append(list, entry{first: first, path: filepath.Join(dir, ent.Name())})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].first < list[j].first })
	paths := make([]string, len(list))
	for i, e := range list {
		paths[i] = e.path
	}
	return paths, nil
}

const (
	blockPrefix = "blk-"
	blockSuffix = ".col"
)

// BlockName names the block compacted from the segment spanning
// [firstLSN, lastLSN]. The name is a pure function of the LSN range, which
// is what makes re-compaction after a crash idempotent.
func BlockName(firstLSN, lastLSN uint64) string {
	return fmt.Sprintf("%s%016x-%016x%s", blockPrefix, firstLSN, lastLSN, blockSuffix)
}

func parseBlockName(name string) (first, last uint64, ok bool) {
	if !strings.HasPrefix(name, blockPrefix) || !strings.HasSuffix(name, blockSuffix) {
		return 0, 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, blockPrefix), blockSuffix)
	parts := strings.SplitN(mid, "-", 2)
	if len(parts) != 2 {
		return 0, 0, false
	}
	first, err1 := strconv.ParseUint(parts[0], 16, 64)
	last, err2 := strconv.ParseUint(parts[1], 16, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return first, last, true
}
