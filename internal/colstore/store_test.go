package colstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sqlclean/internal/journal"
	"sqlclean/internal/logmodel"
)

// genEntries builds a SkyServer-flavored workload: a small template pool
// repeated with varying literals — the distribution the paper's log has and
// the store is designed around.
func genEntries(n int, seed int64) []logmodel.Entry {
	rng := rand.New(rand.NewSource(seed))
	templates := []func() string{
		func() string {
			return fmt.Sprintf("SELECT top 10 ra,dec FROM PhotoObj WHERE objID=%d", rng.Int63())
		},
		func() string {
			return fmt.Sprintf("SELECT * FROM SpecObj WHERE z BETWEEN %.3f AND %.3f", rng.Float64(), rng.Float64())
		},
		func() string {
			return fmt.Sprintf("SELECT name FROM users WHERE name = '%c%d'", 'a'+rune(rng.Intn(26)), rng.Intn(1000))
		},
		func() string {
			return fmt.Sprintf("SELECT count(*) FROM Neighbors WHERE distance < %.5f -- radius", rng.Float64())
		},
		func() string { return "SELECT TOP 1 * FROM PhotoObj" }, // no params
	}
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	entries := make([]logmodel.Entry, n)
	for i := range entries {
		entries[i] = logmodel.Entry{
			Seq:       int64(i + 1),
			Time:      base.Add(time.Duration(i) * 137 * time.Millisecond),
			User:      fmt.Sprintf("10.0.%d.%d", rng.Intn(4), rng.Intn(16)),
			Session:   fmt.Sprintf("s%d", rng.Intn(64)),
			Rows:      int64(rng.Intn(500)),
			Statement: templates[rng.Intn(len(templates))](),
		}
	}
	return entries
}

// writeWAL journals the entries and returns the dir. Small segments force
// rotation so compaction sees several sealed segments.
func writeWAL(t *testing.T, dir string, entries []logmodel.Entry, segBytes int64) {
	t.Helper()
	jw, err := journal.Open(journal.Options{Dir: dir, SegmentBytes: segBytes, Policy: journal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for _, e := range entries {
		buf = journal.EncodeEntry(buf[:0], e)
		if _, err := jw.Append(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
}

func walPayloads(t *testing.T, dir string) map[uint64][]byte {
	t.Helper()
	got := map[uint64][]byte{}
	_, err := journal.Replay(dir, 0, func(lsn uint64, payload []byte) error {
		got[lsn] = append([]byte(nil), payload...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func dirBytes(t *testing.T, dir, pattern string) int64 {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestCompactScanRoundTrip is the tentpole property: WAL → compact → scan
// reproduces every journal frame bit-identically, across random seeds.
func TestCompactScanRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 7, 20260808} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			walDir := filepath.Join(t.TempDir(), "wal")
			entries := genEntries(500, seed)
			writeWAL(t, walDir, entries, 8<<10)
			want := walPayloads(t, walDir)

			st, err := Open(Options{Dir: filepath.Join(t.TempDir(), "blocks")})
			if err != nil {
				t.Fatal(err)
			}
			n, err := st.CompactWALDir(walDir, true, nil)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(entries) {
				t.Fatalf("compacted %d entries, want %d", n, len(entries))
			}

			// The originating segments are now gone: scans must come from blocks.
			segs, _ := filepath.Glob(filepath.Join(walDir, "wal-*.log"))
			if len(segs) < 2 {
				t.Fatalf("want multiple WAL segments, got %d", len(segs))
			}
			for _, s := range segs {
				if err := os.Remove(s); err != nil {
					t.Fatal(err)
				}
			}

			got := map[uint64][]byte{}
			var buf []byte
			err = st.Reader().Scan(ScanOptions{}, func(lsn uint64, e logmodel.Entry) error {
				buf = journal.EncodeEntry(buf[:0], e)
				got[lsn] = append([]byte(nil), buf...)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("scanned %d frames, want %d", len(got), len(want))
			}
			for lsn, w := range want {
				if !bytes.Equal(got[lsn], w) {
					t.Fatalf("lsn %d: reconstructed frame differs\n got %q\nwant %q", lsn, got[lsn], w)
				}
			}
		})
	}
}

// TestKillMidCompaction simulates every crash point of the compaction
// lifecycle and checks the invariant: the entries survive in the journal
// segment, a valid block, or both — never neither.
func TestKillMidCompaction(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	entries := genEntries(120, 3)
	writeWAL(t, walDir, entries, 4<<10)
	blockDir := filepath.Join(t.TempDir(), "blocks")

	st, err := Open(Options{Dir: blockDir})
	if err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(walDir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}

	// Crash before rename: a torn tmp file is left behind. Reopening the
	// store sweeps it, and the segment compacts cleanly afterwards.
	if _, err := st.CompactSegment(segs[0], nil); err != nil {
		t.Fatal(err)
	}
	blocks, _ := filepath.Glob(filepath.Join(blockDir, "blk-*.col"))
	if len(blocks) != 1 {
		t.Fatalf("want 1 block, got %v", blocks)
	}
	tmp := blocks[0] + ".tmp"
	if err := os.WriteFile(tmp, []byte("torn partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Dir: blockDir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("reopen did not sweep tmp file: %v", err)
	}

	// Crash between block rename and segment removal: both files exist.
	// Re-compaction is an idempotent no-op and the block stays valid.
	n, err := st2.CompactSegment(segs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if nb, _ := st2.Stats(); nb != 1 {
		t.Fatalf("idempotent recompaction grew the store to %d blocks", nb)
	}
	if n == 0 {
		t.Fatal("recompaction reported 0 entries")
	}
	if _, err := OpenBlock(blocks[0]); err != nil {
		t.Fatalf("block invalid after recompaction: %v", err)
	}

	// Compaction failure (unreadable segment) must not lose the segment:
	// the caller skips truncation on error, so the WAL still has the data.
	bad := filepath.Join(walDir, "wal-ffffffffffffffff.log")
	if err := os.WriteFile(bad, []byte("\x10\x00\x00\x00garbagegarbagegarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A garbage segment reads as torn-from-frame-0: zero valid frames, no block.
	if n, err := st2.CompactSegment(bad, nil); err != nil || n != 0 {
		t.Fatalf("garbage segment: n=%d err=%v, want 0, nil", n, err)
	}
}

// TestCompressionRatio checks the acceptance bar: a 100k-entry log's blocks
// total ≤ 20% of its WAL byte size.
func TestCompressionRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-entry compaction in -short mode")
	}
	walDir := filepath.Join(t.TempDir(), "wal")
	entries := genEntries(100_000, 11)
	writeWAL(t, walDir, entries, journal.DefaultSegmentBytes)
	walBytes := dirBytes(t, walDir, "wal-*.log")

	st, err := Open(Options{Dir: filepath.Join(t.TempDir(), "blocks")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.CompactWALDir(walDir, true, nil); err != nil {
		t.Fatal(err)
	}
	_, blockBytes := st.Stats()
	ratio := float64(blockBytes) / float64(walBytes)
	t.Logf("wal=%d block=%d ratio=%.3f", walBytes, blockBytes, ratio)
	if ratio > 0.20 {
		t.Fatalf("compaction ratio %.3f exceeds 0.20 (wal=%d, blocks=%d)", ratio, walBytes, blockBytes)
	}
}

// TestEviction fills a capped store and checks oldest-first eviction.
func TestEviction(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	entries := genEntries(600, 5)
	writeWAL(t, walDir, entries, 4<<10)
	segs, _ := filepath.Glob(filepath.Join(walDir, "wal-*.log"))
	if len(segs) < 4 {
		t.Fatalf("want ≥4 segments, got %d", len(segs))
	}

	// First compact uncapped to learn one block's size, then cap to ~2 blocks.
	probe, err := Open(Options{Dir: filepath.Join(t.TempDir(), "probe")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.CompactSegment(segs[0], nil); err != nil {
		t.Fatal(err)
	}
	_, one := probe.Stats()

	st, err := Open(Options{Dir: filepath.Join(t.TempDir(), "blocks"), MaxBytes: one*2 + one/2})
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if _, err := st.CompactSegment(seg, nil); err != nil {
			t.Fatal(err)
		}
	}
	nb, bytes := st.Stats()
	if bytes > one*2+one/2 {
		t.Fatalf("store over cap after eviction: %d > %d", bytes, one*2+one/2)
	}
	if nb >= len(segs) {
		t.Fatalf("nothing was evicted: %d blocks from %d segments", nb, len(segs))
	}
	// The survivors must be the NEWEST blocks.
	blocks, err := st.Reader().Blocks()
	if err != nil {
		t.Fatal(err)
	}
	var minFirst uint64 = 1<<64 - 1
	for _, b := range blocks {
		if b.Meta.FirstLSN < minFirst {
			minFirst = b.Meta.FirstLSN
		}
	}
	if minFirst == 1 {
		t.Fatal("oldest block survived eviction")
	}
	// Scans of the evicted range return nothing; the retained range scans.
	var got int
	err = st.Reader().Scan(ScanOptions{}, func(uint64, logmodel.Entry) error { got++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got == 0 || got >= len(entries) {
		t.Fatalf("retained scan count %d out of range (0, %d)", got, len(entries))
	}
}

// TestScanPruning covers time-range and template filters.
func TestScanPruning(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	entries := genEntries(400, 9)
	writeWAL(t, walDir, entries, 4<<10)
	st, err := Open(Options{Dir: filepath.Join(t.TempDir(), "blocks")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.CompactWALDir(walDir, true, nil); err != nil {
		t.Fatal(err)
	}

	// Time-range filter: matches exactly the entries inside the range.
	from := entries[100].Time
	to := entries[300].Time
	want := 0
	for _, e := range entries {
		if !e.Time.Before(from) && !e.Time.After(to) {
			want++
		}
	}
	got := 0
	err = st.Reader().Scan(ScanOptions{From: from, To: to}, func(_ uint64, e logmodel.Entry) error {
		if e.Time.Before(from) || e.Time.After(to) {
			t.Fatalf("entry at %v outside [%v, %v]", e.Time, from, to)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("time-range scan: got %d entries, want %d", got, want)
	}

	// Template filter by lexical fingerprint: only that template's entries.
	sk, _, _ := Split(entries[0].Statement)
	fp := Fingerprint(sk)
	want = 0
	for _, e := range entries {
		s, _, _ := Split(e.Statement)
		if s == sk {
			want++
		}
	}
	got = 0
	err = st.Reader().Scan(ScanOptions{Templates: map[uint64]bool{fp: true}}, func(_ uint64, e logmodel.Entry) error {
		s, _, _ := Split(e.Statement)
		if s != sk {
			t.Fatalf("template filter leaked %q", e.Statement)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want || got == 0 {
		t.Fatalf("template scan: got %d entries, want %d (nonzero)", got, want)
	}

	// Unknown template: nothing.
	err = st.Reader().Scan(ScanOptions{Templates: map[uint64]bool{0xdead: true}}, func(_ uint64, e logmodel.Entry) error {
		t.Fatalf("unknown-template scan yielded %q", e.Statement)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestClassifierEnrichment checks that engine fingerprints and verdicts
// attached at compaction time come back from index-only reads.
func TestClassifierEnrichment(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	entries := genEntries(100, 13)
	writeWAL(t, walDir, entries, journal.DefaultSegmentBytes)
	st, err := Open(Options{Dir: filepath.Join(t.TempDir(), "blocks")})
	if err != nil {
		t.Fatal(err)
	}
	classify := func(stmt string) Classification {
		if strings.Contains(stmt, "PhotoObj") {
			return Classification{EngineFP: 777, Verdicts: []string{"stifle"}}
		}
		return Classification{}
	}
	if _, err := st.CompactWALDir(walDir, true, classify); err != nil {
		t.Fatal(err)
	}
	blocks, err := st.Reader().Blocks()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range blocks {
		for _, tmpl := range b.Templates {
			if tmpl.EngineFP == 777 {
				found = true
				if len(tmpl.Verdicts) != 1 || tmpl.Verdicts[0] != "stifle" {
					t.Fatalf("verdicts = %v", tmpl.Verdicts)
				}
				if tmpl.Count == 0 || tmpl.MinTime.After(tmpl.MaxTime) {
					t.Fatalf("bad template index: %+v", tmpl)
				}
			}
		}
	}
	if !found {
		t.Fatal("classified template missing from block index")
	}
	// Engine-FP filtered scans hit the same template.
	got := 0
	err = st.Reader().Scan(ScanOptions{Templates: map[uint64]bool{777: true}}, func(_ uint64, e logmodel.Entry) error {
		if !strings.Contains(e.Statement, "PhotoObj") {
			t.Fatalf("engine-FP filter leaked %q", e.Statement)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Fatal("engine-FP filtered scan returned nothing")
	}
}
