// Block encoding. A block is the columnar form of one compacted journal
// segment: every logmodel.Entry field becomes a column stream, statements
// are factored into a template dictionary plus per-slot parameter streams,
// and each section is framed with length + CRC32C exactly like the journal,
// so a torn or bit-rotted block is detected on read, never silently
// misdecoded.
//
// File layout:
//
//	magic "SQCOLBK1" (8 bytes)
//	section*            each: [length u32 LE] [crc32c u32 LE] [body]
//
// where length counts the body and the CRC (Castagnoli) covers the body.
// A body is [type u8] [enc u8] [payload]: enc 0 is raw, enc 1 is DEFLATE
// (parameter and dictionary sections are text-heavy and compress hard).
// Sections appear in a fixed order with the metadata and template
// dictionary first, so index reads — time bounds, template IDs, per-template
// counts, verdicts — never touch the column payloads.
package colstore

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"os"

	"sqlclean/internal/logmodel"
)

var blockMagic = [8]byte{'S', 'Q', 'C', 'O', 'L', 'B', 'K', '1'}

// Section types, in their required file order.
const (
	secMeta     = 1 // entry count, time bounds, LSN bounds
	secDict     = 2 // template dictionary + per-template index + verdicts
	secTime     = 3 // delta-varint unix-nano timestamps
	secTID      = 4 // per-entry local template index
	secSeq      = 5 // delta-varint sequence numbers
	secRows     = 6 // varint row counts
	secUsers    = 7 // user dictionary + per-entry ids
	secSessions = 8 // session dictionary + per-entry ids
	secParams   = 9 // parameter values grouped by (template, slot)
)

const (
	encRaw   = 0
	encFlate = 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// flateMin is the body size below which compression is not attempted.
const flateMin = 256

// Classification is the compactor's per-template enrichment: the engine
// fingerprint of the template's statements (internal/skeleton identity, the
// ID /report and /toplist expose) and the antipattern verdicts the engine
// holds for it at compaction time. The zero value means "unclassified" —
// offline compaction without an engine still produces a valid block.
type Classification struct {
	EngineFP uint64
	Verdicts []string
}

// Classifier enriches one template, given a representative statement.
// Called once per distinct template per block, never per entry.
type Classifier func(statement string) Classification

// template is one dictionary entry being built.
type template struct {
	skeleton string
	slots    int
	opaque   bool
	class    Classification
	count    int
	minNS    int64
	maxNS    int64
	params   [][]string // per slot, values in occurrence order
}

// blockBuilder accumulates entries and serializes them as one block.
type blockBuilder struct {
	byFP      map[uint64]int
	templates []*template
	tids      []uint32
	times     []int64
	seqs      []int64
	rows      []int64
	users     *stringDict
	sessions  *stringDict
	firstLSN  uint64
	lastLSN   uint64
	classify  Classifier
}

func newBlockBuilder(classify Classifier) *blockBuilder {
	return &blockBuilder{
		byFP:     map[uint64]int{},
		users:    newStringDict(),
		sessions: newStringDict(),
		classify: classify,
	}
}

// add appends one entry (in journal order) to the block under construction.
func (b *blockBuilder) add(e logmodel.Entry, lsn uint64) {
	if len(b.tids) == 0 {
		b.firstLSN = lsn
	}
	if lsn > b.lastLSN {
		b.lastLSN = lsn
	}
	sk, params, opaque := Split(e.Statement)
	fp := Fingerprint(sk)
	ti, ok := b.byFP[fp]
	if !ok {
		ti = len(b.templates)
		b.byFP[fp] = ti
		t := &template{
			skeleton: sk,
			slots:    len(params),
			opaque:   opaque,
			minNS:    math.MaxInt64,
			maxNS:    math.MinInt64,
			params:   make([][]string, len(params)),
		}
		if b.classify != nil {
			t.class = b.classify(e.Statement)
		}
		b.templates = append(b.templates, t)
	}
	t := b.templates[ti]
	if len(params) != t.slots {
		// Two statements whose skeletons collide but disagree on slot count
		// cannot share a template; demote this entry to an opaque singleton.
		// (Unreachable for Split's grammar — the skeleton encodes its slot
		// count — but the store must never depend on that.)
		sk, params, opaque = e.Statement, nil, true
		fp = Fingerprint(sk)
		ti, ok = b.byFP[fp]
		if !ok || b.templates[ti].slots != 0 {
			ti = len(b.templates)
			b.byFP[fp] = ti
			b.templates = append(b.templates, &template{
				skeleton: sk, opaque: opaque,
				minNS: math.MaxInt64, maxNS: math.MinInt64,
			})
		}
		t = b.templates[ti]
	}
	ns := e.Time.UnixNano()
	t.count++
	if ns < t.minNS {
		t.minNS = ns
	}
	if ns > t.maxNS {
		t.maxNS = ns
	}
	for s, p := range params {
		t.params[s] = append(t.params[s], p)
	}
	b.tids = append(b.tids, uint32(ti))
	b.times = append(b.times, ns)
	b.seqs = append(b.seqs, e.Seq)
	b.rows = append(b.rows, e.Rows)
	b.users.add(e.User)
	b.sessions.add(e.Session)
}

func (b *blockBuilder) len() int { return len(b.tids) }

// encode serializes the block to w.
func (b *blockBuilder) encode(w io.Writer) error {
	if len(b.tids) == 0 {
		return errors.New("colstore: empty block")
	}
	if _, err := w.Write(blockMagic[:]); err != nil {
		return err
	}
	var minNS, maxNS int64 = math.MaxInt64, math.MinInt64
	for _, ns := range b.times {
		if ns < minNS {
			minNS = ns
		}
		if ns > maxNS {
			maxNS = ns
		}
	}

	var buf []byte
	// secMeta
	buf = binary.AppendUvarint(buf, uint64(len(b.tids)))
	buf = binary.AppendVarint(buf, minNS)
	buf = binary.AppendVarint(buf, maxNS)
	buf = binary.AppendUvarint(buf, b.firstLSN)
	buf = binary.AppendUvarint(buf, b.lastLSN)
	if err := writeSection(w, secMeta, buf); err != nil {
		return err
	}

	// secDict: dictionary and per-template index in one read.
	buf = buf[:0]
	buf = binary.AppendUvarint(buf, uint64(len(b.templates)))
	for _, t := range b.templates {
		flags := byte(0)
		if t.opaque {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = appendString(buf, t.skeleton)
		buf = binary.AppendUvarint(buf, uint64(t.slots))
		buf = binary.AppendUvarint(buf, t.class.EngineFP)
		buf = binary.AppendUvarint(buf, uint64(len(t.class.Verdicts)))
		for _, v := range t.class.Verdicts {
			buf = appendString(buf, v)
		}
		buf = binary.AppendUvarint(buf, uint64(t.count))
		buf = binary.AppendVarint(buf, t.minNS)
		buf = binary.AppendVarint(buf, t.maxNS)
	}
	if err := writeSection(w, secDict, buf); err != nil {
		return err
	}

	// secTime: absolute first, then deltas.
	buf = buf[:0]
	prev := int64(0)
	for _, ns := range b.times {
		buf = binary.AppendVarint(buf, ns-prev)
		prev = ns
	}
	if err := writeSection(w, secTime, buf); err != nil {
		return err
	}

	// secTID
	buf = buf[:0]
	for _, t := range b.tids {
		buf = binary.AppendUvarint(buf, uint64(t))
	}
	if err := writeSection(w, secTID, buf); err != nil {
		return err
	}

	// secSeq
	buf = buf[:0]
	prev = 0
	for _, s := range b.seqs {
		buf = binary.AppendVarint(buf, s-prev)
		prev = s
	}
	if err := writeSection(w, secSeq, buf); err != nil {
		return err
	}

	// secRows
	buf = buf[:0]
	for _, r := range b.rows {
		buf = binary.AppendVarint(buf, r)
	}
	if err := writeSection(w, secRows, buf); err != nil {
		return err
	}

	if err := writeSection(w, secUsers, b.users.encode(nil)); err != nil {
		return err
	}
	if err := writeSection(w, secSessions, b.sessions.encode(nil)); err != nil {
		return err
	}

	// secParams: for each template, for each slot, count values back to back.
	buf = buf[:0]
	for _, t := range b.templates {
		for _, vals := range t.params {
			for _, v := range vals {
				buf = appendString(buf, v)
			}
		}
	}
	return writeSection(w, secParams, buf)
}

// writeSection frames one section: type + encoding byte + payload, length-
// and CRC-prefixed. Large payloads are DEFLATE-compressed when that shrinks
// them.
func writeSection(w io.Writer, typ byte, payload []byte) error {
	enc := byte(encRaw)
	body := payload
	if len(payload) >= flateMin {
		var z bytes.Buffer
		fw, err := flate.NewWriter(&z, flate.BestSpeed)
		if err != nil {
			return err
		}
		if _, err := fw.Write(payload); err != nil {
			return err
		}
		if err := fw.Close(); err != nil {
			return err
		}
		if z.Len() < len(payload) {
			enc = encFlate
			body = z.Bytes()
		}
	}
	var hdr [10]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)+2))
	hdr[8] = typ
	hdr[9] = enc
	crc := crc32.Update(0, castagnoli, hdr[8:10])
	crc = crc32.Update(crc, castagnoli, body)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// stringDict is a build-side string dictionary plus the per-entry id column.
type stringDict struct {
	byVal map[string]uint32
	vals  []string
	ids   []uint32
}

func newStringDict() *stringDict {
	return &stringDict{byVal: map[string]uint32{}}
}

func (d *stringDict) add(s string) {
	id, ok := d.byVal[s]
	if !ok {
		id = uint32(len(d.vals))
		d.byVal[s] = id
		d.vals = append(d.vals, s)
	}
	d.ids = append(d.ids, id)
}

func (d *stringDict) encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(d.vals)))
	for _, v := range d.vals {
		buf = appendString(buf, v)
	}
	for _, id := range d.ids {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	return buf
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// writeBuiltBlock encodes a built block into path atomically: tmp file,
// fsync, rename. A crash at any point leaves either no file or a complete
// valid block under the final name — never a torn one. The caller fsyncs
// the directory.
func writeBuiltBlock(path string, b *blockBuilder) (int64, error) {
	if b.len() == 0 {
		return 0, errors.New("colstore: no entries to compact")
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	bw := bytes.Buffer{}
	if err := b.encode(&bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	size := int64(bw.Len())
	if _, err := f.Write(bw.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return size, nil
}
