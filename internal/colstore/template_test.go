package colstore

import (
	"math/rand"
	"testing"
)

func TestSplitJoinExamples(t *testing.T) {
	cases := []struct {
		in       string
		params   int
		skeleton string // "" = don't check
	}{
		{"select top 10 ra, dec from PhotoObj where objID=587731186203885111", 2,
			"select top \x1a ra, dec from PhotoObj where objID=\x1a"},
		{"SELECT * FROM SpecObj WHERE z BETWEEN 0.02 AND 0.05", 2, ""},
		{"select name from users where name = 'O''Brien'", 1,
			"select name from users where name = \x1a"},
		{"select 'a', 'b', 1.5e-3, .25, 0x0 from t", 5, ""}, // 0x0 splits as 0, x0 is a word
		{"/* 42 is not a literal */ select 7 -- trailing 9\n", 1, ""},
		{"select [col 1], \"col 2\", photoObj2.x1 from [my table]", 0, ""},
		{"", 0, ""},
		{"select col3 from t1x", 0, ""},
		{"'unterminated literal", 1, "\x1a"},
	}
	for _, c := range cases {
		sk, params, opaque := Split(c.in)
		if opaque {
			t.Errorf("Split(%q) unexpectedly opaque", c.in)
		}
		if len(params) != c.params {
			t.Errorf("Split(%q) = %d params %v, want %d", c.in, len(params), params, c.params)
		}
		if c.skeleton != "" && sk != c.skeleton {
			t.Errorf("Split(%q) skeleton = %q, want %q", c.in, sk, c.skeleton)
		}
		if got := Join(sk, params); got != c.in {
			t.Errorf("Join(Split(%q)) = %q", c.in, got)
		}
	}
}

func TestSplitOpaque(t *testing.T) {
	in := "select \x1a from t where x = 5"
	sk, params, opaque := Split(in)
	if !opaque || sk != in || params != nil {
		t.Fatalf("Split of statement containing the slot byte: opaque=%v sk=%q params=%v", opaque, sk, params)
	}
	if got := Join(sk, params); got != in {
		t.Fatalf("opaque Join = %q, want %q", got, in)
	}
}

// TestSplitJoinProperty fuzzes the reversibility contract over random byte
// strings biased toward SQL-ish content.
func TestSplitJoinProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []string{
		"select ", "from ", "where ", "'", "''", "0", "5.5", "1e9", ".", "-", "--",
		"/*", "*/", "[", "]", "\"", "x", "tbl3", "=", " ", "\n", "\x00", "\x1a", "é", ",",
	}
	for i := 0; i < 5000; i++ {
		var s string
		for n := rng.Intn(20); n > 0; n-- {
			s += alphabet[rng.Intn(len(alphabet))]
		}
		sk, params, opaque := Split(s)
		if got := Join(sk, params); got != s {
			t.Fatalf("seed case %d: Join(Split(%q)) = %q (skeleton %q, params %v, opaque %v)",
				i, s, got, sk, params, opaque)
		}
		if !opaque {
			if n := countSlots(sk); n != len(params) {
				t.Fatalf("case %d: %d slots in skeleton, %d params", i, n, len(params))
			}
		}
	}
}

func countSlots(sk string) int {
	n := 0
	for i := 0; i < len(sk); i++ {
		if sk[i] == slotByte {
			n++
		}
	}
	return n
}

func TestFingerprintStability(t *testing.T) {
	sk1, _, _ := Split("select ra from PhotoObj where objID=1")
	sk2, _, _ := Split("select ra from PhotoObj where objID=99999")
	if sk1 != sk2 || Fingerprint(sk1) != Fingerprint(sk2) {
		t.Fatalf("same template, different identity: %q vs %q", sk1, sk2)
	}
	sk3, _, _ := Split("select dec from PhotoObj where objID=1")
	if Fingerprint(sk1) == Fingerprint(sk3) {
		t.Fatalf("distinct templates share a fingerprint")
	}
}
