// Lexical templatization: the reversible split of a statement into a
// skeleton (the SQL text with literals cut out) and its parameter values
// (the literals' exact source bytes, in order). "Query Log Compression for
// Workload Analytics" builds its whole store on this factoring: a log is a
// tiny dictionary of skeletons plus dense parameter columns, because real
// workloads repeat a handful of query shapes with different constants.
//
// Unlike the pipeline's AST skeleton (internal/skeleton), which normalizes
// whitespace, case and clause structure, this split must lose NOTHING: the
// retention store's contract is that Join(Split(s)) == s for every input
// byte. So the scanner works on the raw text, recognizing exactly two
// literal classes — single-quoted strings (with '' escapes) and numeric
// literals — and leaving everything else, including whitespace and comments,
// in the skeleton verbatim.
package colstore

// slotByte marks one parameter position in a skeleton. 0x1A (ASCII SUB) can
// never appear in the skeleton text produced by Split: a statement that
// contains it is stored opaque (whole text as the skeleton, zero slots), so
// reconstruction stays exact for arbitrary byte strings.
const slotByte = 0x1A

// Split cuts statement into a skeleton and its literal parameter values.
// opaque reports that the statement could not be templatized (it contains
// slotByte itself); the skeleton is then the statement verbatim and params
// is nil. Join(skeleton, params) restores the input exactly.
func Split(statement string) (skeleton string, params []string, opaque bool) {
	for i := 0; i < len(statement); i++ {
		if statement[i] == slotByte {
			return statement, nil, true
		}
	}
	var sk []byte
	last := 0 // start of the pending non-literal run
	i := 0
	for i < len(statement) {
		c := statement[i]
		switch {
		case c == '\'':
			end := scanString(statement, i)
			sk = append(sk, statement[last:i]...)
			sk = append(sk, slotByte)
			params = append(params, statement[i:end])
			i, last = end, end
		case c >= '0' && c <= '9' || c == '.' && i+1 < len(statement) && isDigit(statement[i+1]):
			if i > 0 && isWordByte(statement[i-1]) {
				// Digits inside an identifier (photoObj2, x1) are not literals.
				i++
				continue
			}
			end := scanNumber(statement, i)
			sk = append(sk, statement[last:i]...)
			sk = append(sk, slotByte)
			params = append(params, statement[i:end])
			i, last = end, end
		case c == '-' && i+1 < len(statement) && statement[i+1] == '-':
			i = scanLineComment(statement, i)
		case c == '/' && i+1 < len(statement) && statement[i+1] == '*':
			i = scanBlockComment(statement, i)
		case c == '[':
			i = scanBracket(statement, i)
		case c == '"':
			i = scanDoubleQuoted(statement, i)
		case isWordByte(c):
			// Skip the whole word so a trailing digit run (col3) is never
			// mistaken for a number.
			for i < len(statement) && isWordByte(statement[i]) {
				i++
			}
		default:
			i++
		}
	}
	sk = append(sk, statement[last:]...)
	return string(sk), params, false
}

// Join reverses Split: each slot byte in the skeleton is replaced by the
// next parameter. It is the block decoder's statement reconstruction.
func Join(skeleton string, params []string) string {
	if len(params) == 0 {
		return skeleton
	}
	n := len(skeleton) - len(params)
	for _, p := range params {
		n += len(p)
	}
	out := make([]byte, 0, n)
	pi := 0
	last := 0
	for i := 0; i < len(skeleton); i++ {
		if skeleton[i] != slotByte {
			continue
		}
		out = append(out, skeleton[last:i]...)
		if pi < len(params) {
			out = append(out, params[pi]...)
			pi++
		}
		last = i + 1
	}
	out = append(out, skeleton[last:]...)
	return string(out)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isWordByte(c byte) bool {
	return c == '_' || c == '#' || c == '$' || c == '@' ||
		c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= 0x80
}

// scanString returns the index just past a single-quoted string starting at
// i ('' is an escaped quote). An unterminated string runs to end of input —
// still reversible, the raw bytes are the parameter.
func scanString(s string, i int) int {
	i++ // opening quote
	for i < len(s) {
		if s[i] == '\'' {
			if i+1 < len(s) && s[i+1] == '\'' {
				i += 2
				continue
			}
			return i + 1
		}
		i++
	}
	return i
}

// scanNumber returns the index just past a numeric literal: digits, at most
// one dot, and an exponent suffix. It deliberately keeps the grammar simple
// and prefix-closed — whatever it consumes is replayed verbatim on Join.
func scanNumber(s string, i int) int {
	seenDot := false
	for i < len(s) {
		c := s[i]
		switch {
		case isDigit(c):
			i++
		case c == '.' && !seenDot:
			seenDot = true
			i++
		case (c == 'e' || c == 'E') && i+1 < len(s) &&
			(isDigit(s[i+1]) || (s[i+1] == '+' || s[i+1] == '-') && i+2 < len(s) && isDigit(s[i+2])):
			i += 2 // consume 'e' and sign-or-digit; digit loop eats the rest
		default:
			return i
		}
	}
	return i
}

func scanLineComment(s string, i int) int {
	for i < len(s) && s[i] != '\n' {
		i++
	}
	return i
}

func scanBlockComment(s string, i int) int {
	i += 2
	for i+1 < len(s) {
		if s[i] == '*' && s[i+1] == '/' {
			return i + 2
		}
		i++
	}
	return len(s)
}

func scanBracket(s string, i int) int {
	for i++; i < len(s); i++ {
		if s[i] == ']' {
			return i + 1
		}
	}
	return i
}

func scanDoubleQuoted(s string, i int) int {
	for i++; i < len(s); i++ {
		if s[i] == '"' {
			return i + 1
		}
	}
	return i
}

// Fingerprint is the stable template ID of a skeleton: FNV-1a over the
// skeleton bytes. Stable across blocks, processes and versions — the ID a
// template keeps for its whole retention history.
func Fingerprint(skeleton string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(skeleton); i++ {
		h ^= uint64(skeleton[i])
		h *= prime64
	}
	return h
}
