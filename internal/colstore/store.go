// Store: the on-disk collection of blocks plus the compaction and eviction
// lifecycle. The daemon owns one Store per data directory; every snapshot
// compacts the WAL segments the snapshot made disposable into blocks here,
// and the size cap evicts oldest blocks first — retention degrades from the
// far end of history, never the near end.
package colstore

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"sqlclean/internal/journal"
	"sqlclean/internal/obs"
)

// Options configures a Store.
type Options struct {
	// Dir is the block directory; created if missing.
	Dir string
	// MaxBytes caps the store's total block bytes; oldest blocks are evicted
	// when a compaction pushes the total over. 0 means unlimited.
	MaxBytes int64
	// Metrics optionally receives colstore_blocks, colstore_bytes,
	// colstore_compactions_total, colstore_entries_total,
	// colstore_evictions_total and colstore_errors_total.
	Metrics *obs.Registry
	// Logger receives structured diagnostics. Nil discards them.
	Logger *slog.Logger
}

type blockRef struct {
	first uint64
	last  uint64
	path  string
	size  int64
}

// Store manages the block directory. Safe for concurrent use.
type Store struct {
	opt Options

	mu     sync.Mutex
	blocks []blockRef // sorted by first LSN
	bytes  int64

	mCompactions *obs.Counter
	mEntries     *obs.Counter
	mEvictions   *obs.Counter
	mErrors      *obs.Counter
	gBlocks      *obs.Gauge
	gBytes       *obs.Gauge
}

// Open creates or reopens a store directory, adopting any blocks already in
// it (a restarted daemon continues the same history).
func Open(opt Options) (*Store, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("colstore: empty directory")
	}
	if opt.Logger == nil {
		opt.Logger = obs.NopLogger()
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		opt: opt,

		mCompactions: opt.Metrics.Counter("colstore_compactions_total"),
		mEntries:     opt.Metrics.Counter("colstore_entries_total"),
		mEvictions:   opt.Metrics.Counter("colstore_evictions_total"),
		mErrors:      opt.Metrics.Counter("colstore_errors_total"),
		gBlocks:      opt.Metrics.Gauge("colstore_blocks"),
		gBytes:       opt.Metrics.Gauge("colstore_bytes"),
	}
	ents, err := os.ReadDir(opt.Dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range ents {
		first, last, ok := parseBlockName(ent.Name())
		if !ok || ent.IsDir() {
			// Sweep a tmp file left by a crash mid-write; the segment it was
			// compacting still exists, so nothing is lost.
			if filepath.Ext(ent.Name()) == ".tmp" {
				os.Remove(filepath.Join(opt.Dir, ent.Name()))
			}
			continue
		}
		fi, err := ent.Info()
		if err != nil {
			continue
		}
		s.blocks = append(s.blocks, blockRef{
			first: first, last: last,
			path: filepath.Join(opt.Dir, ent.Name()), size: fi.Size(),
		})
		s.bytes += fi.Size()
	}
	sort.Slice(s.blocks, func(i, j int) bool { return s.blocks[i].first < s.blocks[j].first })
	s.gBlocks.Set(int64(len(s.blocks)))
	s.gBytes.Set(s.bytes)
	return s, nil
}

// Dir returns the store's block directory.
func (s *Store) Dir() string { return s.opt.Dir }

// Reader returns a scan API over the store's directory.
func (s *Store) Reader() *Reader { return NewReader(s.opt.Dir) }

// Stats returns the current block count and total block bytes.
func (s *Store) Stats() (blocks int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks), s.bytes
}

// CompactSegment compacts one sealed journal segment into a block, then
// applies the size cap. It is idempotent: if the segment's block already
// exists (a crash between block rename and segment removal), the write is
// skipped and the existing block is adopted. The segment file itself is NOT
// removed — the caller deletes it (journal.TruncateBefore) only after this
// returns, so a crash anywhere leaves the entries in at least one of the
// two files. An empty or fully-torn segment compacts to nothing.
func (s *Store) CompactSegment(segPath string, classify Classifier) (entries int, err error) {
	b := newBlockBuilder(classify)
	frames, firstLSN, lastLSN, err := journal.ScanSegmentFile(segPath, func(lsn uint64, payload []byte) error {
		e, err := journal.DecodeEntry(payload)
		if err != nil {
			return fmt.Errorf("colstore: segment %s lsn %d: %w", filepath.Base(segPath), lsn, err)
		}
		b.add(e, lsn)
		return nil
	})
	if err != nil {
		s.mErrors.Inc()
		return 0, err
	}
	if frames == 0 {
		return 0, nil
	}
	// Scan reconstructs per-entry LSNs as firstLSN+i, which relies on the
	// writer's dense LSN assignment; refuse a segment that violates it.
	if lastLSN != firstLSN+uint64(frames)-1 {
		s.mErrors.Inc()
		return 0, fmt.Errorf("colstore: segment %s has non-dense LSNs [%d,%d] over %d frames",
			filepath.Base(segPath), firstLSN, lastLSN, frames)
	}
	path := filepath.Join(s.opt.Dir, BlockName(firstLSN, lastLSN))

	s.mu.Lock()
	defer s.mu.Unlock()
	if fi, statErr := os.Stat(path); statErr == nil {
		s.opt.Logger.Debug("block already compacted, skipping",
			"component", "colstore", "block", filepath.Base(path))
		s.adoptLocked(blockRef{first: firstLSN, last: lastLSN, path: path, size: fi.Size()})
		s.evictLocked()
		return frames, nil
	}
	size, err := writeBuiltBlock(path, b)
	if err != nil {
		s.mErrors.Inc()
		return 0, err
	}
	if err := syncDir(s.opt.Dir); err != nil {
		s.mErrors.Inc()
		return 0, err
	}
	s.adoptLocked(blockRef{first: firstLSN, last: lastLSN, path: path, size: size})
	s.mCompactions.Inc()
	s.mEntries.Add(int64(frames))
	s.opt.Logger.Info("compacted journal segment",
		"component", "colstore", "segment", filepath.Base(segPath),
		"block", filepath.Base(path), "entries", frames, "bytes", size)
	s.evictLocked()
	return frames, nil
}

// CompactWALDir compacts every sealed segment of a journal directory (all
// but the newest, which the writer may still be appending to — pass
// includeActive to take that one too, e.g. for offline compaction of a cold
// WAL). Returns total entries compacted. Segment files are left in place.
func (s *Store) CompactWALDir(walDir string, includeActive bool, classify Classifier) (entries int, err error) {
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.log"))
	if err != nil {
		return 0, err
	}
	sort.Strings(segs) // fixed-width hex names sort in LSN order
	if !includeActive && len(segs) > 0 {
		segs = segs[:len(segs)-1]
	}
	for _, seg := range segs {
		n, err := s.CompactSegment(seg, classify)
		if err != nil {
			return entries, err
		}
		entries += n
	}
	return entries, nil
}

// adoptLocked inserts a block ref in LSN order (idempotent on path).
func (s *Store) adoptLocked(ref blockRef) {
	for _, b := range s.blocks {
		if b.path == ref.path {
			return
		}
	}
	s.blocks = append(s.blocks, ref)
	sort.Slice(s.blocks, func(i, j int) bool { return s.blocks[i].first < s.blocks[j].first })
	s.bytes += ref.size
	s.gBlocks.Set(int64(len(s.blocks)))
	s.gBytes.Set(s.bytes)
}

// evictLocked removes oldest blocks while the store exceeds its cap.
func (s *Store) evictLocked() {
	if s.opt.MaxBytes <= 0 {
		return
	}
	for s.bytes > s.opt.MaxBytes && len(s.blocks) > 0 {
		victim := s.blocks[0]
		if err := os.Remove(victim.path); err != nil && !os.IsNotExist(err) {
			s.mErrors.Inc()
			s.opt.Logger.Error("block eviction failed",
				"component", "colstore", "block", filepath.Base(victim.path), "error", err)
			return
		}
		s.blocks = s.blocks[1:]
		s.bytes -= victim.size
		s.mEvictions.Inc()
		s.opt.Logger.Info("evicted oldest block",
			"component", "colstore", "block", filepath.Base(victim.path),
			"bytes_freed", victim.size, "bytes_now", s.bytes)
	}
	s.gBlocks.Set(int64(len(s.blocks)))
	s.gBytes.Set(s.bytes)
}

// syncDir fsyncs a directory so renames in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
