// Package storage is an in-memory relational store: typed columns, row
// storage and hash indexes. Together with package exec it substitutes for
// the SQL Server instance of the paper's runtime experiment (§6.3) — it
// executes the original and the rewritten statements against the same data
// so the rewrite speedup can be measured without the authors' testbed.
package storage

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sqlclean/internal/schema"
)

// Value is one cell. The zero value is SQL NULL.
type Value struct {
	Kind ValueKind
	I    int64
	F    float64
	S    string
}

// ValueKind tags the runtime type of a Value.
type ValueKind byte

// Value kinds.
const (
	KindNull ValueKind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// Int returns an integer value.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// Str returns a string value.
func Str(v string) Value { return Value{Kind: KindString, S: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	i := int64(0)
	if v {
		i = 1
	}
	return Value{Kind: KindBool, I: i}
}

// Null is the SQL NULL value.
var Null = Value{}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt, KindBool:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	}
	return 0, false
}

// Truth reports the SQL three-valued truth of a boolean-ish value; NULL is
// not true.
func (v Value) Truth() bool { return v.Kind == KindBool && v.I != 0 }

// Key returns a map-key string uniquely encoding the value, used by hash
// indexes and GROUP BY.
func (v Value) Key() string {
	switch v.Kind {
	case KindNull:
		return "\x00"
	case KindInt, KindBool:
		return "i" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		return "f" + strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return "s" + v.S
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return v.S
	}
}

// Compare orders two non-null values; mixed numeric kinds compare
// numerically. It returns -1, 0, or 1; ok is false for incomparable kinds.
func Compare(a, b Value) (cmp int, ok bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	af, aNum := a.AsFloat()
	bf, bNum := b.AsFloat()
	if aNum && bNum {
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		}
		return 0, true
	}
	if a.Kind == KindString && b.Kind == KindString {
		return strings.Compare(a.S, b.S), true
	}
	return 0, false
}

// Row is one tuple.
type Row []Value

// Table stores rows with the column layout of its schema definition.
type Table struct {
	Def  *schema.Table
	Rows []Row
	// colIdx maps lower-cased column names to positions.
	colIdx map[string]int
	// indexes maps lower-cased column names to value-key → row positions.
	indexes map[string]map[string][]int
}

// ColIndex returns the position of the named column.
func (t *Table) ColIndex(name string) (int, bool) {
	i, ok := t.colIdx[strings.ToLower(name)]
	return i, ok
}

// Insert appends a row. The row length must match the column count.
func (t *Table) Insert(r Row) error {
	if len(r) != len(t.Def.Columns) {
		return fmt.Errorf("storage: table %s: row has %d values, want %d", t.Def.Name, len(r), len(t.Def.Columns))
	}
	pos := len(t.Rows)
	t.Rows = append(t.Rows, r)
	for col, idx := range t.indexes {
		ci := t.colIdx[col]
		k := r[ci].Key()
		idx[k] = append(idx[k], pos)
	}
	return nil
}

// BuildIndex creates (or rebuilds) a hash index over the column.
func (t *Table) BuildIndex(column string) error {
	col := strings.ToLower(column)
	ci, ok := t.colIdx[col]
	if !ok {
		return fmt.Errorf("storage: table %s has no column %s", t.Def.Name, column)
	}
	idx := make(map[string][]int, len(t.Rows))
	for pos, r := range t.Rows {
		k := r[ci].Key()
		idx[k] = append(idx[k], pos)
	}
	t.indexes[col] = idx
	return nil
}

// DeleteRows removes the rows at the given positions and rebuilds the
// table's indexes. Positions refer to the pre-delete row numbering;
// out-of-range positions are ignored.
func (t *Table) DeleteRows(positions []int) int {
	if len(positions) == 0 {
		return 0
	}
	drop := make(map[int]bool, len(positions))
	for _, p := range positions {
		if p >= 0 && p < len(t.Rows) {
			drop[p] = true
		}
	}
	if len(drop) == 0 {
		return 0
	}
	kept := t.Rows[:0]
	for i, r := range t.Rows {
		if !drop[i] {
			kept = append(kept, r)
		}
	}
	t.Rows = kept
	t.rebuildIndexes()
	return len(drop)
}

// UpdateRow overwrites one cell and maintains the column's index.
func (t *Table) UpdateRow(pos int, column string, v Value) error {
	ci, ok := t.ColIndex(column)
	if !ok {
		return fmt.Errorf("storage: table %s has no column %s", t.Def.Name, column)
	}
	if pos < 0 || pos >= len(t.Rows) {
		return fmt.Errorf("storage: table %s: row %d out of range", t.Def.Name, pos)
	}
	col := strings.ToLower(column)
	if idx, has := t.indexes[col]; has {
		oldKey := t.Rows[pos][ci].Key()
		bucket := idx[oldKey]
		for i, p := range bucket {
			if p == pos {
				idx[oldKey] = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		newKey := v.Key()
		idx[newKey] = append(idx[newKey], pos)
	}
	t.Rows[pos][ci] = v
	return nil
}

func (t *Table) rebuildIndexes() {
	for col := range t.indexes {
		_ = t.BuildIndex(col)
	}
}

// Lookup returns the positions of rows whose column equals v, using the hash
// index if one exists. ok is false when no index covers the column.
func (t *Table) Lookup(column string, v Value) (rows []int, ok bool) {
	idx, has := t.indexes[strings.ToLower(column)]
	if !has {
		return nil, false
	}
	return idx[v.Key()], true
}

// HasIndex reports whether the column has a hash index.
func (t *Table) HasIndex(column string) bool {
	_, ok := t.indexes[strings.ToLower(column)]
	return ok
}

// DB is a set of tables built from a schema catalog.
type DB struct {
	Catalog *schema.Catalog
	tables  map[string]*Table
}

// NewDB creates an empty database with one table per catalog entry and a
// hash index on every key column.
func NewDB(cat *schema.Catalog) *DB {
	db := &DB{Catalog: cat, tables: map[string]*Table{}}
	for _, name := range cat.TableNames() {
		def, _ := cat.Table(name)
		t := &Table{Def: def, colIdx: map[string]int{}, indexes: map[string]map[string][]int{}}
		for i, c := range def.Columns {
			t.colIdx[strings.ToLower(c.Name)] = i
		}
		for _, c := range def.Columns {
			if c.Key {
				// Empty table: index is trivially buildable.
				_ = t.BuildIndex(c.Name)
			}
		}
		db.tables[strings.ToLower(name)] = t
	}
	return db
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert appends a row to the named table.
func (db *DB) Insert(table string, r Row) error {
	t, ok := db.Table(table)
	if !ok {
		return fmt.Errorf("storage: no table %s", table)
	}
	return t.Insert(r)
}
