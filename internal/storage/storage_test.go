package storage

import (
	"testing"
	"testing/quick"

	"sqlclean/internal/schema"
)

func demoDB() *DB {
	cat := schema.New()
	cat.AddTable("t",
		schema.Column{Name: "id", Type: "int", Key: true},
		schema.Column{Name: "name", Type: "string"},
		schema.Column{Name: "score", Type: "float"},
	)
	return NewDB(cat)
}

func TestValueConstructorsAndPredicates(t *testing.T) {
	if !Null.IsNull() || Int(1).IsNull() {
		t.Error("IsNull misbehaves")
	}
	if !Bool(true).Truth() || Bool(false).Truth() || Int(1).Truth() {
		t.Error("Truth misbehaves")
	}
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Error("int AsFloat")
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Error("float AsFloat")
	}
	if _, ok := Str("x").AsFloat(); ok {
		t.Error("string AsFloat must fail")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL": Null, "42": Int(42), "x": Str("x"), "true": Bool(true),
		"false": Bool(false), "2.5": Float(2.5),
	}
	for want, v := range cases {
		if v.String() != want {
			t.Errorf("got %q want %q", v.String(), want)
		}
	}
}

func TestValueKeyDistinguishesKindsAndValues(t *testing.T) {
	vals := []Value{Null, Int(1), Int(2), Float(1.5), Str("1"), Str(""), Bool(true)}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, ok := seen[k]; ok && prev != v {
			// Int and Bool intentionally share encoding only when equal.
			if !(v.Kind == KindBool && prev.Kind == KindInt && prev.I == v.I) &&
				!(v.Kind == KindInt && prev.Kind == KindBool && prev.I == v.I) {
				t.Errorf("key collision: %v vs %v", prev, v)
			}
		}
		seen[k] = v
	}
}

func TestCompare(t *testing.T) {
	if c, ok := Compare(Int(1), Int(2)); !ok || c != -1 {
		t.Error("int compare")
	}
	if c, ok := Compare(Int(2), Float(1.5)); !ok || c != 1 {
		t.Error("mixed numeric compare")
	}
	if c, ok := Compare(Str("a"), Str("b")); !ok || c != -1 {
		t.Error("string compare")
	}
	if c, ok := Compare(Str("a"), Str("a")); !ok || c != 0 {
		t.Error("string equal")
	}
	if _, ok := Compare(Null, Int(1)); ok {
		t.Error("null compare must fail")
	}
	if _, ok := Compare(Str("a"), Int(1)); ok {
		t.Error("string/int compare must fail")
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		c1, ok1 := Compare(Int(a), Int(b))
		c2, ok2 := Compare(Int(b), Int(a))
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInsertAndLookup(t *testing.T) {
	db := demoDB()
	tbl, _ := db.Table("t")
	for i := int64(0); i < 10; i++ {
		if err := tbl.Insert(Row{Int(i % 3), Str("n"), Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	rows, ok := tbl.Lookup("id", Int(1))
	if !ok {
		t.Fatal("key column must be indexed by NewDB")
	}
	if len(rows) != 3 { // i%3 == 1 for i = 1, 4, 7
		t.Fatalf("lookup: %v", rows)
	}
	if _, ok := tbl.Lookup("name", Str("n")); ok {
		t.Error("unindexed column lookup must report no index")
	}
	if !tbl.HasIndex("ID") || tbl.HasIndex("name") {
		t.Error("HasIndex wrong")
	}
}

func TestIndexMaintainedAcrossInserts(t *testing.T) {
	db := demoDB()
	tbl, _ := db.Table("t")
	_ = tbl.Insert(Row{Int(7), Str("a"), Float(0)})
	rows, _ := tbl.Lookup("id", Int(7))
	if len(rows) != 1 || rows[0] != 0 {
		t.Fatalf("lookup after insert: %v", rows)
	}
	_ = tbl.Insert(Row{Int(7), Str("b"), Float(0)})
	rows, _ = tbl.Lookup("id", Int(7))
	if len(rows) != 2 {
		t.Fatalf("index missed second insert: %v", rows)
	}
}

func TestBuildIndexOnPopulatedTable(t *testing.T) {
	db := demoDB()
	tbl, _ := db.Table("t")
	_ = tbl.Insert(Row{Int(1), Str("x"), Float(0)})
	_ = tbl.Insert(Row{Int(2), Str("x"), Float(0)})
	if err := tbl.BuildIndex("name"); err != nil {
		t.Fatal(err)
	}
	rows, ok := tbl.Lookup("name", Str("x"))
	if !ok || len(rows) != 2 {
		t.Fatalf("lookup: %v ok=%v", rows, ok)
	}
	if err := tbl.BuildIndex("ghost"); err == nil {
		t.Error("indexing unknown column must fail")
	}
}

func TestInsertArityChecked(t *testing.T) {
	db := demoDB()
	if err := db.Insert("t", Row{Int(1)}); err == nil {
		t.Error("short row accepted")
	}
	if err := db.Insert("ghost", Row{}); err == nil {
		t.Error("unknown table accepted")
	}
	if err := db.Insert("t", Row{Int(1), Str("a"), Float(2)}); err != nil {
		t.Errorf("valid insert rejected: %v", err)
	}
}

func TestColIndex(t *testing.T) {
	db := demoDB()
	tbl, _ := db.Table("t")
	if i, ok := tbl.ColIndex("SCORE"); !ok || i != 2 {
		t.Errorf("ColIndex: %d ok=%v", i, ok)
	}
	if _, ok := tbl.ColIndex("nope"); ok {
		t.Error("unknown column found")
	}
}

func TestTableNamesSorted(t *testing.T) {
	db := NewDB(schema.SkyServer())
	names := db.TableNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("unsorted: %v", names)
		}
	}
}

func TestDeleteRows(t *testing.T) {
	db := demoDB()
	tbl, _ := db.Table("t")
	for i := int64(0); i < 5; i++ {
		_ = tbl.Insert(Row{Int(i), Str("n"), Float(0)})
	}
	n := tbl.DeleteRows([]int{1, 3, 99, -1})
	if n != 2 || len(tbl.Rows) != 3 {
		t.Fatalf("deleted %d, %d rows left", n, len(tbl.Rows))
	}
	// Index rebuilt: survivors still found, victims gone.
	if rows, _ := tbl.Lookup("id", Int(0)); len(rows) != 1 {
		t.Errorf("survivor lost: %v", rows)
	}
	if rows, _ := tbl.Lookup("id", Int(1)); len(rows) != 0 {
		t.Errorf("victim still indexed: %v", rows)
	}
	if tbl.DeleteRows(nil) != 0 {
		t.Error("empty delete must be a no-op")
	}
	if tbl.DeleteRows([]int{100}) != 0 {
		t.Error("out-of-range delete must be a no-op")
	}
}

func TestUpdateRowDirect(t *testing.T) {
	db := demoDB()
	tbl, _ := db.Table("t")
	_ = tbl.Insert(Row{Int(1), Str("a"), Float(0)})
	if err := tbl.UpdateRow(0, "id", Int(7)); err != nil {
		t.Fatal(err)
	}
	if rows, _ := tbl.Lookup("id", Int(7)); len(rows) != 1 {
		t.Errorf("index not moved: %v", rows)
	}
	if rows, _ := tbl.Lookup("id", Int(1)); len(rows) != 0 {
		t.Errorf("stale index entry: %v", rows)
	}
	// Unindexed column update works too.
	if err := tbl.UpdateRow(0, "name", Str("b")); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][1].S != "b" {
		t.Errorf("cell not updated: %v", tbl.Rows[0])
	}
	// Errors.
	if err := tbl.UpdateRow(0, "ghost", Int(1)); err == nil {
		t.Error("unknown column accepted")
	}
	if err := tbl.UpdateRow(9, "id", Int(1)); err == nil {
		t.Error("out-of-range row accepted")
	}
}
