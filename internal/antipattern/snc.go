package antipattern

import (
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/session"
	"sqlclean/internal/sqlast"
)

// SNCRule detects the Searching-Nullable-Columns antipattern
// (Definition 16, §5.4): a WHERE clause comparing a column to the NULL
// literal with = or <>. Such comparisons never evaluate to true; the
// intended semantics is IS [NOT] NULL, which is what the solver rewrites
// them to. SNC is a single-query pattern (a pattern of length one).
type SNCRule struct{}

// Kind implements Rule.
func (r *SNCRule) Kind() Kind { return SNC }

// Detect implements Rule.
func (r *SNCRule) Detect(pl parsedlog.Log, sess session.Session) []Instance {
	var out []Instance
	for _, idx := range sess.Indices {
		e := pl[idx]
		if e.Class != sqlast.ClassSelect || e.Info == nil {
			continue
		}
		hasNullCmp := false
		for _, p := range e.Info.Predicates {
			if p.NullCompare {
				hasNullCmp = true
				break
			}
		}
		if !hasNullCmp {
			continue
		}
		skel := e.Info.SkeletonText()
		out = append(out, Instance{
			Kind:     SNC,
			Indices:  []int{idx},
			User:     sess.User,
			Identity: skel,
			First:    skel,
			Second:   skel,
			Solvable: true,
		})
	}
	return out
}
