// Package antipattern implements the paper's antipattern detection rules:
// the three Stifle classes (Definitions 11–14), the Circuitous Treasure
// Hunt candidate (Definition 15), and the Searching-Nullable-Columns
// extension (Definition 16, §5.4). Rules plug into a Registry so new
// antipatterns can be added with a definition + detection rule (+ optional
// solver in package rewrite), exactly the extension path §5.4 describes.
package antipattern

import (
	"sort"

	"sqlclean/internal/obs"
	"sqlclean/internal/parallel"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/schema"
	"sqlclean/internal/session"
)

// Kind names an antipattern type.
type Kind string

// The antipattern kinds shipped with the framework.
const (
	DWStifle Kind = "DW-Stifle"
	DSStifle Kind = "DS-Stifle"
	DFStifle Kind = "DF-Stifle"
	CTH      Kind = "CTH"
	SNC      Kind = "SNC"
)

// Instance is one detected occurrence of an antipattern in the log.
type Instance struct {
	Kind Kind
	// Indices are the positions of the member queries in the parsed log,
	// in log order.
	Indices []int
	// User is the issuing user (IP).
	User string
	// Identity is the pattern-identity string: the skeleton text for
	// single-template antipatterns, or "first ⇒ second" for
	// multi-template ones. Instances with equal Kind and Identity are
	// occurrences of the same (anti)pattern.
	Identity string
	// First and Second are the first two skeleton statements, for
	// Table 6-style reporting. Second equals First for DW-Stifle.
	First, Second string
	// Solvable reports whether package rewrite has a solving solution.
	Solvable bool
}

// Len returns the number of member queries.
func (in Instance) Len() int { return len(in.Indices) }

// Rule is one antipattern detection rule, scanning a single session.
type Rule interface {
	Kind() Kind
	// Detect returns the instances found in the session. Instances of
	// solvable kinds must not overlap each other within one rule.
	Detect(pl parsedlog.Log, sess session.Session) []Instance
}

// Options tune the built-in rules.
type Options struct {
	// MinRun is the minimum number of queries forming a Stifle or CTH
	// instance. The paper requires "two or more"; default 2.
	MinRun int
	// RequireKeyColumn enforces Definition 11's third axiom (the filter
	// column must be a key attribute). Disabling it is the paper's
	// discussed simplification that risks false positives; kept as an
	// ablation switch.
	RequireKeyColumn bool
}

// DefaultOptions returns the paper-faithful settings.
func DefaultOptions() Options {
	return Options{MinRun: 2, RequireKeyColumn: true}
}

func (o Options) withDefaults() Options {
	if o.MinRun < 2 {
		o.MinRun = 2
	}
	return o
}

// Registry holds the active rules.
type Registry struct {
	rules []Rule
}

// NewRegistry returns a registry with the given rules.
func NewRegistry(rules ...Rule) *Registry { return &Registry{rules: rules} }

// DefaultRegistry returns the paper's rule set: the Stifle classes, CTH
// candidates, and SNC.
func DefaultRegistry(cat *schema.Catalog, opt Options) *Registry {
	opt = opt.withDefaults()
	return NewRegistry(
		&StifleRule{Catalog: cat, Opt: opt},
		&CTHRule{Opt: opt},
		&SNCRule{},
	)
}

// Register appends a rule (the §5.4 extension hook).
func (r *Registry) Register(rule Rule) { r.rules = append(r.rules, rule) }

// Rules returns the registered rules.
func (r *Registry) Rules() []Rule { return r.rules }

// Detect runs every rule over every session and returns all instances,
// ordered by the position of their first member query (the paper's "solving
// starts with the antipattern which appears in the log first", §5.5).
func (r *Registry) Detect(pl parsedlog.Log, sessions []session.Session) []Instance {
	return r.DetectParallel(pl, sessions, 1)
}

// DetectParallel is Detect fanned out over up to `workers` goroutines
// (0 selects GOMAXPROCS, 1 is the serial path). Sessions are independent
// detection units — Definition 8 scopes every pattern instance to a single
// session — so each session's rule scan runs on whichever worker is free,
// and the per-session results are merged back in session order before the
// same stable sort Detect applies. The output is therefore identical to the
// serial result. Rules must be safe for concurrent use; the built-in rules
// are stateless and qualify, custom Config.ExtraRules must not mutate shared
// state during Detect.
func (r *Registry) DetectParallel(pl parsedlog.Log, sessions []session.Session, workers int) []Instance {
	return r.DetectParallelSpan(pl, sessions, workers, nil)
}

// DetectParallelSpan is DetectParallel with per-worker child spans attached
// to sp (nil sp skips tracing; the result is unchanged either way).
func (r *Registry) DetectParallelSpan(pl parsedlog.Log, sessions []session.Session, workers int, sp *obs.Span) []Instance {
	perSession := parallel.MapSpan(sp, workers, sessions, func(_ int, sess session.Session) []Instance {
		var found []Instance
		for _, rule := range r.rules {
			found = append(found, rule.Detect(pl, sess)...)
		}
		return found
	})
	var out []Instance
	for _, found := range perSession {
		out = append(out, found...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Indices[0] < out[j].Indices[0]
	})
	return out
}

// Summary aggregates instances per kind.
type Summary struct {
	Kind Kind
	// Distinct is the number of distinct pattern identities.
	Distinct int
	// Instances is the number of occurrences.
	Instances int
	// Queries is the total number of member queries over all instances.
	Queries int
}

// Summarize groups instances by kind. The result is ordered DW, DS, DF,
// CTH, SNC, then any custom kinds alphabetically.
func Summarize(instances []Instance) []Summary {
	type agg struct {
		ids     map[string]bool
		count   int
		queries int
	}
	byKind := map[Kind]*agg{}
	for _, in := range instances {
		a, ok := byKind[in.Kind]
		if !ok {
			a = &agg{ids: map[string]bool{}}
			byKind[in.Kind] = a
		}
		a.ids[in.Identity] = true
		a.count++
		a.queries += len(in.Indices)
	}
	known := []Kind{DWStifle, DSStifle, DFStifle, CTH, SNC}
	var kinds []Kind
	seen := map[Kind]bool{}
	for _, k := range known {
		if byKind[k] != nil {
			kinds = append(kinds, k)
			seen[k] = true
		}
	}
	var custom []string
	for k := range byKind {
		if !seen[k] {
			custom = append(custom, string(k))
		}
	}
	sort.Strings(custom)
	for _, k := range custom {
		kinds = append(kinds, Kind(k))
	}
	out := make([]Summary, 0, len(kinds))
	for _, k := range kinds {
		a := byKind[k]
		out = append(out, Summary{Kind: k, Distinct: len(a.ids), Instances: a.count, Queries: a.queries})
	}
	return out
}
