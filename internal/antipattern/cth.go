package antipattern

import (
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/session"
	"sqlclean/internal/skeleton"
	"sqlclean/internal/sqlast"
)

// CTHRule detects Circuitous-Treasure-Hunt candidates (Definition 15): a
// head query followed by one or more follower queries where
//
//   - the head and the first follower have different skeletons (SQ1 ≠ SQ2),
//   - every follower has exactly one predicate (CP = 1) with an equality
//     comparison, and
//   - the follower's filter column appears among the head query's output
//     attributes (the structural hint that the head's result feeds the
//     follower — the paper's "attributes in the SELECT clause of the first
//     query used in the WHERE clause of the other").
//
// Without re-querying only candidates can be detected; deciding whether a
// candidate is a real CTH needs domain knowledge (§6.6) or, in our
// reproduction, the workload generator's ground truth.
type CTHRule struct {
	Opt Options
}

// Kind implements Rule.
func (r *CTHRule) Kind() Kind { return CTH }

// followerOK reports whether follower's single equality predicate draws on
// one of the head's output columns.
func followerOK(head, follower *skeleton.Info) bool {
	if follower.CP() != 1 {
		return false
	}
	p := follower.Predicates[0]
	if !p.IsEquality() || !p.IsValueFilter() || p.NullCompare {
		return false
	}
	for _, col := range head.SelectCols {
		if col == "*" || col == p.Column {
			return true
		}
	}
	return false
}

// Detect implements Rule. For each head query the follower run is extended
// greedily; a head+followers group of total length ≥ MinRun is one
// candidate instance. Heads are only considered outside a previous
// instance, so instances never overlap.
func (r *CTHRule) Detect(pl parsedlog.Log, sess session.Session) []Instance {
	opt := r.Opt.withDefaults()
	idxs := sess.Indices
	var out []Instance
	i := 0
	for i < len(idxs) {
		head := pl[idxs[i]]
		if head.Class != sqlast.ClassSelect || head.Info == nil {
			i++
			continue
		}
		j := i
		for j+1 < len(idxs) {
			next := pl[idxs[j+1]]
			if next.Class != sqlast.ClassSelect || next.Info == nil {
				break
			}
			// SQ1 ≠ SQ2: the first follower must have a different skeleton
			// than the head (otherwise this is a Stifle shape, not a CTH).
			if j == i && next.Info.Fingerprint == head.Info.Fingerprint {
				break
			}
			if !followerOK(head.Info, next.Info) {
				break
			}
			j++
		}
		if j-i+1 >= opt.MinRun {
			members := make([]int, 0, j-i+1)
			for k := i; k <= j; k++ {
				members = append(members, idxs[k])
			}
			firstSkel := head.Info.SkeletonText()
			secondSkel := pl[members[1]].Info.SkeletonText()
			out = append(out, Instance{
				Kind:     CTH,
				Indices:  members,
				User:     sess.User,
				Identity: firstSkel + " => " + secondSkel,
				First:    firstSkel,
				Second:   secondSkel,
				Solvable: false,
			})
			i = j + 1
			continue
		}
		i++
	}
	return out
}
