package antipattern

import (
	"testing"
	"time"

	"sqlclean/internal/logmodel"
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/schema"
	"sqlclean/internal/session"
)

func demoCatalog() *schema.Catalog {
	c := schema.New()
	c.AddTable("employee",
		schema.Column{Name: "empid", Type: "int", Key: true},
		schema.Column{Name: "name", Type: "string"},
		schema.Column{Name: "address", Type: "string"},
		schema.Column{Name: "department", Type: "string"},
	)
	c.AddTable("employeeinfo",
		schema.Column{Name: "empid", Type: "int", Key: true},
		schema.Column{Name: "address", Type: "string"},
	)
	return c
}

func buildLog(t *testing.T, user string, stmts ...string) (parsedlog.Log, []session.Session) {
	t.Helper()
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	var l logmodel.Log
	for i, s := range stmts {
		l = append(l, logmodel.Entry{
			Seq: int64(i), Time: base.Add(time.Duration(i) * time.Second),
			User: user, Statement: s,
		})
	}
	pl, _ := parsedlog.Parse(l)
	return pl, session.Build(l, session.Options{})
}

func detect(t *testing.T, stmts ...string) []Instance {
	t.Helper()
	pl, sess := buildLog(t, "u", stmts...)
	reg := DefaultRegistry(demoCatalog(), DefaultOptions())
	return reg.Detect(pl, sess)
}

func kindsOf(instances []Instance) map[Kind]int {
	out := map[Kind]int{}
	for _, in := range instances {
		out[in.Kind]++
	}
	return out
}

func TestDWStifleDetection(t *testing.T) {
	instances := detect(t,
		"SELECT name FROM Employee WHERE empId = 8",
		"SELECT name FROM Employee WHERE empId = 1",
		"SELECT name FROM Employee WHERE empId = 3",
	)
	k := kindsOf(instances)
	if k[DWStifle] != 1 {
		t.Fatalf("instances: %+v", instances)
	}
	var dw Instance
	for _, in := range instances {
		if in.Kind == DWStifle {
			dw = in
		}
	}
	if dw.Len() != 3 || !dw.Solvable {
		t.Errorf("dw: %+v", dw)
	}
	if dw.First != dw.Second {
		t.Errorf("DW identity skeletons must match: %q vs %q", dw.First, dw.Second)
	}
}

func TestDSStifleDetection(t *testing.T) {
	instances := detect(t,
		"SELECT name FROM Employee WHERE empId = 8",
		"SELECT address, department FROM Employee WHERE empId = 8",
	)
	k := kindsOf(instances)
	if k[DSStifle] != 1 {
		t.Fatalf("instances: %+v", instances)
	}
}

func TestDFStifleDetection(t *testing.T) {
	instances := detect(t,
		"SELECT name FROM Employee WHERE empId = 8",
		"SELECT address FROM EmployeeInfo WHERE empId = 8",
	)
	k := kindsOf(instances)
	if k[DFStifle] != 1 {
		t.Fatalf("instances: %+v", instances)
	}
}

func TestStifleRequiresEqualValuesForDS(t *testing.T) {
	// Different select lists AND different values: neither DW (SC differs)
	// nor DS (WC differs).
	instances := detect(t,
		"SELECT name FROM Employee WHERE empId = 8",
		"SELECT address FROM Employee WHERE empId = 9",
	)
	k := kindsOf(instances)
	if k[DWStifle]+k[DSStifle]+k[DFStifle] != 0 {
		t.Fatalf("unexpected stifle: %+v", instances)
	}
}

func TestStifleRequiresKeyColumn(t *testing.T) {
	// department is not a key: Definition 11's third axiom rejects it.
	instances := detect(t,
		"SELECT name FROM Employee WHERE department = 'a'",
		"SELECT name FROM Employee WHERE department = 'b'",
	)
	if kindsOf(instances)[DWStifle] != 0 {
		t.Fatalf("non-key filter detected as Stifle: %+v", instances)
	}

	// With the ablation switch the same run is detected.
	pl, sess := buildLog(t, "u",
		"SELECT name FROM Employee WHERE department = 'a'",
		"SELECT name FROM Employee WHERE department = 'b'",
	)
	reg := DefaultRegistry(demoCatalog(), Options{MinRun: 2, RequireKeyColumn: false})
	if kindsOf(reg.Detect(pl, sess))[DWStifle] != 1 {
		t.Error("key-check ablation did not detect the run")
	}
}

func TestStifleRequiresSingleEqualityPredicate(t *testing.T) {
	// CP = 2 disqualifies.
	instances := detect(t,
		"SELECT name FROM Employee WHERE empId = 8 AND department = 'x'",
		"SELECT name FROM Employee WHERE empId = 9 AND department = 'x'",
	)
	if kindsOf(instances)[DWStifle] != 0 {
		t.Fatalf("CP=2 run detected: %+v", instances)
	}
	// Non-equality disqualifies.
	instances = detect(t,
		"SELECT name FROM Employee WHERE empId > 8",
		"SELECT name FROM Employee WHERE empId > 9",
	)
	if kindsOf(instances)[DWStifle] != 0 {
		t.Fatalf("range run detected: %+v", instances)
	}
}

func TestStifleMinRun(t *testing.T) {
	pl, sess := buildLog(t, "u",
		"SELECT name FROM Employee WHERE empId = 8",
		"SELECT name FROM Employee WHERE empId = 1",
		"SELECT name FROM Employee WHERE empId = 2",
	)
	reg := DefaultRegistry(demoCatalog(), Options{MinRun: 4, RequireKeyColumn: true})
	if n := kindsOf(reg.Detect(pl, sess))[DWStifle]; n != 0 {
		t.Errorf("run of 3 detected with MinRun=4: %d", n)
	}
}

func TestStifleRunsAreMaximalAndNonOverlapping(t *testing.T) {
	instances := detect(t,
		"SELECT name FROM Employee WHERE empId = 1",
		"SELECT name FROM Employee WHERE empId = 2",
		"SELECT name FROM Employee WHERE empId = 3",
		"SELECT name FROM Employee WHERE empId = 4",
	)
	dwCount := 0
	for _, in := range instances {
		if in.Kind == DWStifle {
			dwCount++
			if in.Len() != 4 {
				t.Errorf("run not maximal: %+v", in)
			}
		}
	}
	if dwCount != 1 {
		t.Errorf("want exactly one maximal run, got %d", dwCount)
	}
}

func TestStifleBrokenByInterleavedQuery(t *testing.T) {
	instances := detect(t,
		"SELECT name FROM Employee WHERE empId = 1",
		"SELECT name FROM Employee WHERE empId = 2",
		"SELECT count(*) FROM Employee",
		"SELECT name FROM Employee WHERE empId = 3",
	)
	for _, in := range instances {
		if in.Kind == DWStifle && in.Len() != 2 {
			t.Errorf("run crossed a non-qualifying query: %+v", in)
		}
	}
}

func TestStifleUsersDoNotMix(t *testing.T) {
	base := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	l := logmodel.Log{
		{Seq: 0, Time: base, User: "u1", Statement: "SELECT name FROM Employee WHERE empId = 1"},
		{Seq: 1, Time: base.Add(time.Second), User: "u2", Statement: "SELECT name FROM Employee WHERE empId = 2"},
	}
	pl, _ := parsedlog.Parse(l)
	sess := session.Build(l, session.Options{})
	reg := DefaultRegistry(demoCatalog(), DefaultOptions())
	if n := len(reg.Detect(pl, sess)); n != 0 {
		t.Errorf("cross-user stifle: %d instances", n)
	}
}

func TestCTHDetection(t *testing.T) {
	instances := detect(t,
		"SELECT empId FROM Employee WHERE department = 'sales'",
		"SELECT name FROM Employee WHERE empId = 12",
		"SELECT name FROM Employee WHERE empId = 15",
	)
	k := kindsOf(instances)
	if k[CTH] != 1 {
		t.Fatalf("instances: %+v", instances)
	}
	var cth Instance
	for _, in := range instances {
		if in.Kind == CTH {
			cth = in
		}
	}
	if cth.Len() != 3 || cth.Solvable {
		t.Errorf("cth: %+v", cth)
	}
}

func TestCTHRequiresDifferentFirstSkeleton(t *testing.T) {
	// SQ1 = SQ2: a DW-Stifle shape, not a CTH.
	instances := detect(t,
		"SELECT empId FROM Employee WHERE empId = 1",
		"SELECT empId FROM Employee WHERE empId = 2",
	)
	if kindsOf(instances)[CTH] != 0 {
		t.Fatalf("same-skeleton pair detected as CTH: %+v", instances)
	}
}

func TestCTHRequiresFollowerColumnInHeadSelect(t *testing.T) {
	instances := detect(t,
		"SELECT name FROM Employee WHERE department = 'sales'",
		"SELECT address FROM Employee WHERE empId = 12",
	)
	if kindsOf(instances)[CTH] != 0 {
		t.Fatalf("follower filters a column the head never returned: %+v", instances)
	}
}

func TestCTHStarHeadMatchesAnyFollower(t *testing.T) {
	instances := detect(t,
		"SELECT * FROM Employee WHERE department = 'sales'",
		"SELECT name FROM Employee WHERE empId = 12",
	)
	if kindsOf(instances)[CTH] != 1 {
		t.Fatalf("star head not honored: %+v", instances)
	}
}

func TestSNCDetection(t *testing.T) {
	instances := detect(t, "SELECT name FROM Employee WHERE address = NULL")
	k := kindsOf(instances)
	if k[SNC] != 1 {
		t.Fatalf("instances: %+v", instances)
	}
	instances = detect(t, "SELECT name FROM Employee WHERE address IS NULL")
	if kindsOf(instances)[SNC] != 0 {
		t.Fatalf("IS NULL flagged: %+v", instances)
	}
}

func TestDetectOrdersByLogPosition(t *testing.T) {
	instances := detect(t,
		"SELECT name FROM Employee WHERE empId = 1",
		"SELECT name FROM Employee WHERE empId = 2",
		"SELECT count(*) FROM Employee",
		"SELECT empId FROM Employee WHERE department = 'x'",
		"SELECT name FROM Employee WHERE empId = 3",
		"SELECT name FROM Employee WHERE empId = 4",
	)
	for i := 1; i < len(instances); i++ {
		if instances[i-1].Indices[0] > instances[i].Indices[0] {
			t.Fatalf("instances not in log order: %+v", instances)
		}
	}
}

func TestRegistryExtension(t *testing.T) {
	reg := NewRegistry()
	reg.Register(&SNCRule{})
	if len(reg.Rules()) != 1 {
		t.Fatal("rule not registered")
	}
	pl, sess := buildLog(t, "u", "SELECT a FROM t WHERE b = NULL")
	if n := len(reg.Detect(pl, sess)); n != 1 {
		t.Errorf("custom registry: %d instances", n)
	}
}

func TestSummarize(t *testing.T) {
	instances := []Instance{
		{Kind: DWStifle, Identity: "A", Indices: []int{0, 1}},
		{Kind: DWStifle, Identity: "A", Indices: []int{5, 6, 7}},
		{Kind: DWStifle, Identity: "B", Indices: []int{9, 10}},
		{Kind: CTH, Identity: "C", Indices: []int{12, 13}},
		{Kind: Kind("Custom"), Identity: "D", Indices: []int{20}},
	}
	sum := Summarize(instances)
	if len(sum) != 3 {
		t.Fatalf("summary: %+v", sum)
	}
	if sum[0].Kind != DWStifle || sum[0].Distinct != 2 || sum[0].Instances != 3 || sum[0].Queries != 7 {
		t.Errorf("dw summary: %+v", sum[0])
	}
	if sum[1].Kind != CTH {
		t.Errorf("order: %+v", sum)
	}
	if sum[2].Kind != Kind("Custom") {
		t.Errorf("custom kinds last: %+v", sum)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MinRun != 2 {
		t.Errorf("MinRun default: %d", o.MinRun)
	}
	d := DefaultOptions()
	if !d.RequireKeyColumn || d.MinRun != 2 {
		t.Errorf("defaults: %+v", d)
	}
}

func TestDBObjectsBrowsingFormsDSStifle(t *testing.T) {
	// The paper's biggest DS cluster (§6.9): text and description of the
	// same DBObjects row fetched by separate statements.
	pl, sess := buildLog(t, "u",
		"SELECT text FROM DBObjects WHERE name='photoobjall'",
		"SELECT description FROM DBObjects WHERE name='photoobjall'",
	)
	reg := DefaultRegistry(schema.SkyServer(), DefaultOptions())
	instances := reg.Detect(pl, sess)
	if kindsOf(instances)[DSStifle] != 1 {
		t.Fatalf("instances: %+v", instances)
	}
}

func TestStifleRelationPriority(t *testing.T) {
	// When SC, FC and WC are all equal the pair is a duplicate, not a
	// Stifle; relation must return "".
	pl, sess := buildLog(t, "u",
		"SELECT name FROM Employee WHERE empId = 8",
		"SELECT name FROM Employee WHERE empId = 8",
	)
	reg := DefaultRegistry(demoCatalog(), DefaultOptions())
	for _, in := range reg.Detect(pl, sess) {
		if in.Kind == DWStifle || in.Kind == DSStifle || in.Kind == DFStifle {
			t.Fatalf("identical statements formed a Stifle: %+v", in)
		}
	}
}
