package antipattern

import (
	"strings"

	"sqlclean/internal/parsedlog"
	"sqlclean/internal/schema"
	"sqlclean/internal/session"
	"sqlclean/internal/sqlast"
)

// This file holds optional antipattern rules beyond the paper's core set,
// built with the §5.4 extension recipe (formal shape → detection rule →
// optional solver). They are not registered by default; pass them via
// Config.ExtraRules (and the matching solver via Config.ExtraSolvers).

// Additional antipattern kinds.
const (
	// ImplicitColumns is Karwin's "Implicit Columns" antipattern:
	// SELECT * hides schema dependencies and ships unneeded columns. It is
	// solvable when the catalog knows the table: the star expands to the
	// explicit column list.
	ImplicitColumns Kind = "ImplicitColumns"
	// LeadingWildcard is Karwin's "Poor Man's Search Engine":
	// LIKE '%...' patterns that defeat every index and force full scans.
	// Detect-only (the fix is a different access structure, not a rewrite).
	LeadingWildcard Kind = "LeadingWildcard"
)

// ExtraRules returns the optional rules, ready for Config.ExtraRules.
func ExtraRules(cat *schema.Catalog) []Rule {
	return []Rule{
		&ImplicitColumnsRule{Catalog: cat},
		&LeadingWildcardRule{},
	}
}

// ImplicitColumnsRule flags SELECT * statements over a single table the
// catalog knows, so the solver can expand the star.
type ImplicitColumnsRule struct {
	Catalog *schema.Catalog
}

// Kind implements Rule.
func (r *ImplicitColumnsRule) Kind() Kind { return ImplicitColumns }

// Detect implements Rule.
func (r *ImplicitColumnsRule) Detect(pl parsedlog.Log, sess session.Session) []Instance {
	var out []Instance
	for _, idx := range sess.Indices {
		e := pl[idx]
		if e.Info == nil || len(e.Info.Stmt.From) != 1 {
			continue
		}
		tr, ok := e.Info.Stmt.From[0].(*sqlast.TableRef)
		if !ok {
			continue
		}
		if r.Catalog != nil {
			if _, known := r.Catalog.Table(tr.Name); !known {
				continue
			}
		}
		if !isBareStar(e.Info.Stmt.Items) {
			continue
		}
		skel := e.Info.SkeletonText()
		out = append(out, Instance{
			Kind:     ImplicitColumns,
			Indices:  []int{idx},
			User:     sess.User,
			Identity: skel,
			First:    skel,
			Second:   skel,
			Solvable: r.Catalog != nil,
		})
	}
	return out
}

func isBareStar(items []sqlast.SelectItem) bool {
	if len(items) != 1 {
		return false
	}
	c, ok := items[0].Expr.(*sqlast.ColumnRef)
	return ok && c.Star && c.Qualifier == ""
}

// LeadingWildcardRule flags LIKE predicates whose pattern starts with a
// wildcard — unindexable substring search.
type LeadingWildcardRule struct{}

// Kind implements Rule.
func (r *LeadingWildcardRule) Kind() Kind { return LeadingWildcard }

// Detect implements Rule.
func (r *LeadingWildcardRule) Detect(pl parsedlog.Log, sess session.Session) []Instance {
	var out []Instance
	for _, idx := range sess.Indices {
		e := pl[idx]
		if e.Info == nil || e.Info.Stmt.Where == nil {
			continue
		}
		found := false
		sqlast.Walk(e.Info.Stmt.Where, func(n sqlast.Node) bool {
			if found {
				return false
			}
			like, ok := n.(*sqlast.LikeExpr)
			if !ok {
				return true
			}
			if lit, ok := like.Pattern.(*sqlast.Literal); ok && lit.Kind == "str" {
				if strings.HasPrefix(lit.Val, "%") || strings.HasPrefix(lit.Val, "_") {
					found = true
				}
			}
			return true
		})
		if !found {
			continue
		}
		skel := e.Info.SkeletonText()
		out = append(out, Instance{
			Kind:     LeadingWildcard,
			Indices:  []int{idx},
			User:     sess.User,
			Identity: skel,
			First:    skel,
			Second:   skel,
			Solvable: false,
		})
	}
	return out
}
