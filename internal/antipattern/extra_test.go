package antipattern

import (
	"testing"
)

func detectExtra(t *testing.T, stmts ...string) []Instance {
	t.Helper()
	pl, sess := buildLog(t, "u", stmts...)
	reg := NewRegistry(ExtraRules(demoCatalog())...)
	return reg.Detect(pl, sess)
}

func TestImplicitColumnsDetection(t *testing.T) {
	instances := detectExtra(t, "SELECT * FROM Employee WHERE empId = 8")
	if kindsOf(instances)[ImplicitColumns] != 1 {
		t.Fatalf("instances: %+v", instances)
	}
	if !instances[0].Solvable {
		t.Error("with a catalog the star is solvable")
	}
}

func TestImplicitColumnsSkipsQualifiedStarAndLists(t *testing.T) {
	if n := kindsOf(detectExtra(t, "SELECT E.* FROM Employee E"))[ImplicitColumns]; n != 0 {
		t.Error("qualified star flagged")
	}
	if n := kindsOf(detectExtra(t, "SELECT name FROM Employee"))[ImplicitColumns]; n != 0 {
		t.Error("explicit list flagged")
	}
	if n := kindsOf(detectExtra(t, "SELECT * FROM Employee E JOIN EmployeeInfo EI ON E.empId = EI.empId"))[ImplicitColumns]; n != 0 {
		t.Error("join flagged (only single-table selects are expandable)")
	}
}

func TestImplicitColumnsSkipsUnknownTables(t *testing.T) {
	if n := kindsOf(detectExtra(t, "SELECT * FROM mystery"))[ImplicitColumns]; n != 0 {
		t.Error("unknown table flagged although the solver could not expand it")
	}
}

func TestLeadingWildcardDetection(t *testing.T) {
	instances := detectExtra(t, "SELECT name FROM Employee WHERE name LIKE '%son'")
	if kindsOf(instances)[LeadingWildcard] != 1 {
		t.Fatalf("instances: %+v", instances)
	}
	if instances[0].Solvable {
		t.Error("leading wildcard is detect-only")
	}
	instances = detectExtra(t, "SELECT name FROM Employee WHERE name LIKE '_x%'")
	if kindsOf(instances)[LeadingWildcard] != 1 {
		t.Error("underscore prefix not flagged")
	}
}

func TestTrailingWildcardIsFine(t *testing.T) {
	instances := detectExtra(t, "SELECT name FROM Employee WHERE name LIKE 'son%'")
	if kindsOf(instances)[LeadingWildcard] != 0 {
		t.Fatalf("prefix search flagged: %+v", instances)
	}
}

func TestLeadingWildcardInsideConjunction(t *testing.T) {
	instances := detectExtra(t, "SELECT name FROM Employee WHERE empId = 3 AND name LIKE '%x%'")
	if kindsOf(instances)[LeadingWildcard] != 1 {
		t.Fatalf("nested LIKE missed: %+v", instances)
	}
}
