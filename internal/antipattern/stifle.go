package antipattern

import (
	"sqlclean/internal/parsedlog"
	"sqlclean/internal/schema"
	"sqlclean/internal/session"
	"sqlclean/internal/skeleton"
	"sqlclean/internal/sqlast"
)

// StifleRule detects the three Stifle classes of Definitions 11–14.
//
// A query qualifies for a Stifle when it has exactly one predicate (CP = 1),
// the predicate's comparison is equality (θ = 'equality'), the predicate
// filters by constant values, and — unless disabled — the filter column is a
// key attribute of one of the referenced tables.
//
// A Stifle instance is then a maximal run of ≥ MinRun consecutive qualifying
// queries of one session where every adjacent pair stands in the same clause
// relation:
//
//	DW-Stifle: equal SELECT and FROM clauses, equal WHERE skeleton,
//	           different concrete WHERE (Definition 12);
//	DS-Stifle: different SELECT skeletons, equal FROM, equal concrete
//	           WHERE (Definition 13);
//	DF-Stifle: different FROM clauses, equal concrete WHERE
//	           (Definition 14).
type StifleRule struct {
	Catalog *schema.Catalog
	Opt     Options
}

// Kind implements Rule.
func (r *StifleRule) Kind() Kind { return DWStifle } // representative; emits all three classes

func (r *StifleRule) qualifies(in *skeleton.Info) (skeleton.Predicate, bool) {
	if in == nil || in.CP() != 1 {
		return skeleton.Predicate{}, false
	}
	p := in.Predicates[0]
	if !p.IsEquality() || !p.IsValueFilter() || p.NullCompare {
		return skeleton.Predicate{}, false
	}
	if r.Opt.RequireKeyColumn && r.Catalog != nil {
		if !r.Catalog.IsKeyInAny(p.Column, in.TableNames) {
			return skeleton.Predicate{}, false
		}
	}
	return p, true
}

// relation classifies the clause relation between two qualifying queries; ""
// means none of the Stifle classes applies.
func relation(a, b *skeleton.Info) Kind {
	switch {
	case a.SC == b.SC && a.FC == b.FC && a.SWC == b.SWC && a.WC != b.WC:
		return DWStifle
	case a.SSC != b.SSC && a.FC == b.FC && a.WC == b.WC:
		return DSStifle
	case a.FC != b.FC && a.WC == b.WC && a.WC != "":
		return DFStifle
	}
	return ""
}

// Detect implements Rule. Runs are found greedily from the left so they
// never overlap, and a query belongs to at most one instance.
func (r *StifleRule) Detect(pl parsedlog.Log, sess session.Session) []Instance {
	opt := r.Opt.withDefaults()
	idxs := sess.Indices
	var out []Instance
	i := 0
	for i < len(idxs) {
		e := pl[idxs[i]]
		if e.Class != sqlast.ClassSelect {
			i++
			continue
		}
		if _, ok := r.qualifies(e.Info); !ok {
			i++
			continue
		}
		// Try to grow a run with a consistent relation class.
		var runKind Kind
		j := i
		for j+1 < len(idxs) {
			next := pl[idxs[j+1]]
			if next.Class != sqlast.ClassSelect {
				break
			}
			if _, ok := r.qualifies(next.Info); !ok {
				break
			}
			rel := relation(pl[idxs[j]].Info, next.Info)
			if rel == "" {
				break
			}
			if runKind == "" {
				runKind = rel
			} else if rel != runKind {
				break
			}
			j++
		}
		runLen := j - i + 1
		if runKind != "" && runLen >= opt.MinRun {
			members := make([]int, 0, runLen)
			for k := i; k <= j; k++ {
				members = append(members, idxs[k])
			}
			out = append(out, r.makeInstance(pl, runKind, members, sess.User))
			i = j + 1
			continue
		}
		i++
	}
	return out
}

func (r *StifleRule) makeInstance(pl parsedlog.Log, kind Kind, members []int, user string) Instance {
	first := pl[members[0]].Info
	second := pl[members[1]].Info
	firstSkel := first.SkeletonText()
	secondSkel := second.SkeletonText()
	identity := firstSkel
	if kind != DWStifle {
		identity = firstSkel + " => " + secondSkel
	} else {
		secondSkel = firstSkel
	}
	return Instance{
		Kind:     kind,
		Indices:  members,
		User:     user,
		Identity: identity,
		First:    firstSkel,
		Second:   secondSkel,
		Solvable: true,
	}
}
